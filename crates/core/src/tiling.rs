//! Chunk-range tiling: the shared parallel execution substrate of every
//! sweep kernel in this crate.
//!
//! All SlimSell kernels — BFS ([`crate::bfs`]), SlimChunk
//! ([`crate::slimchunk`]), PageRank ([`mod@crate::pagerank`]), SSSP
//! ([`mod@crate::sssp`]), multi-source BFS ([`mod@crate::msbfs`]) and the
//! betweenness forward sweep ([`mod@crate::betweenness`]) — share one
//! iteration shape: a sweep over the chunk range `0..nc` where chunk `i`
//! reads the *previous* iteration's vectors anywhere but writes only its
//! own `width`-sized slot of the *next* vectors. That positional-write
//! discipline is what this module turns into lock-free parallelism:
//!
//! 1. [`ChunkTiling::new`] partitions `0..nc` into contiguous per-worker
//!    tiles (one per thread under [`Schedule::Static`], an
//!    over-partitioned set under [`Schedule::Dynamic`] so fast threads
//!    steal leftovers);
//! 2. [`ChunkTiling::split`] carves each output slab into disjoint
//!    `&mut` tile views with `split_at_mut` — exclusive ownership, no
//!    locks, no atomics;
//! 3. [`ChunkTiling::map_reduce`] / [`ChunkTiling::for_each`] run the
//!    per-tile work, merging tile results **in tile order**.
//!
//! # Determinism contract
//!
//! When the effective thread count is 1 (or there is at most one chunk)
//! the tiling is a single tile covering every chunk and the drivers run
//! it inline — a plain sequential loop with zero thread-pool
//! interaction. This is the reference oracle the determinism suite
//! (`tests/parallel_determinism.rs`) compares parallel runs against.
//! Because every chunk's math is independent, writes are positional, and
//! tile results merge in tile order, kernel outputs are **bit-identical
//! at any thread count** provided the merge operator is associative and
//! per-chunk work does not depend on tile boundaries. Kernels that need
//! an ordered floating-point reduction (e.g. the PageRank residual)
//! write per-chunk partials into a `width == 1` slab and sum it
//! sequentially in chunk order afterwards.
//!
//! # Example
//!
//! ```
//! use slimsell_core::tiling::{ChunkTiling, Schedule};
//!
//! // Double 4 chunks of width 2, tile-parallel, then reduce a count.
//! let mut data = vec![1.0f32; 8];
//! let tiling = ChunkTiling::new(4, Schedule::Dynamic);
//! let tiles = tiling.split(2, &mut data);
//! let chunks_touched = tiling.map_reduce(
//!     tiles,
//!     |tile| {
//!         for v in tile.data.iter_mut() {
//!             *v *= 2.0;
//!         }
//!         tile.data.len() / 2
//!     },
//!     || 0,
//!     |a, b| a + b,
//! );
//! assert_eq!(chunks_touched, 4);
//! assert!(data.iter().all(|&v| v == 2.0));
//! ```

use rayon::prelude::*;

use crate::semiring::StateVecs;

/// Chunk-to-thread scheduling policy (the paper's `omp-s` / `omp-d`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Schedule {
    /// Contiguous equal partitions of chunks per thread (OpenMP static).
    Static,
    /// Fine-grained work stealing (OpenMP dynamic).
    #[default]
    Dynamic,
}

/// How many tiles each thread gets under dynamic scheduling; the
/// over-partitioning that makes work stealing effective on skewed
/// chunk-length distributions.
pub const DYNAMIC_TILES_PER_THREAD: usize = 8;

/// Splits `0..n` into `parts` contiguous near-equal ranges (first
/// `n % parts` ranges get the extra element). Deterministic in `n` and
/// `parts`; never returns an empty range (`n == 0` yields no ranges).
pub fn even_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for t in 0..parts {
        let len = base + usize::from(t < rem);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// A tile's exclusive view of one output slab: chunks
/// `c0 .. c0 + data.len() / width` with their `width`-sized slots.
pub struct Tile<'a, T> {
    /// First chunk index covered by this tile.
    pub c0: usize,
    /// The tile's slots, `width` elements per chunk, chunk-major.
    pub data: &'a mut [T],
}

/// A tile's disjoint view of the BFS-family iteration outputs: chunks
/// `c0 .. c0 + x.len() / C`, with per-chunk slabs of the next state
/// vectors (`x`/`g`/`p`) and the persistent distance vector `d`.
pub struct ChunkSpan<'a> {
    /// First chunk index covered by this span.
    pub c0: usize,
    /// Next frontier values.
    pub x: &'a mut [f32],
    /// Next auxiliary values (semiring-specific).
    pub g: &'a mut [f32],
    /// Next parent values (sel-max).
    pub p: &'a mut [f32],
    /// Distance vector slots.
    pub d: &'a mut [f32],
}

/// A partition of a chunk range into contiguous per-worker tiles, fixed
/// for one parallel region. See the module docs for the execution model
/// and determinism contract.
#[derive(Clone, Debug)]
pub struct ChunkTiling {
    ranges: Vec<(usize, usize)>,
    sequential: bool,
}

impl ChunkTiling {
    /// Tiles `0..nc` for the *current* effective thread count
    /// (`rayon::current_num_threads`): one tile per thread under
    /// [`Schedule::Static`], [`DYNAMIC_TILES_PER_THREAD`] per thread
    /// under [`Schedule::Dynamic`]. At one effective thread (or `nc <=
    /// 1`) the tiling collapses to the sequential fallback: a single
    /// tile the drivers run inline, with no pool interaction.
    pub fn new(nc: usize, schedule: Schedule) -> Self {
        let threads = rayon::current_num_threads().max(1);
        if threads <= 1 || nc <= 1 {
            return Self::sequential(nc);
        }
        let parts = match schedule {
            Schedule::Static => threads,
            Schedule::Dynamic => threads * DYNAMIC_TILES_PER_THREAD,
        };
        Self { ranges: even_ranges(nc, parts), sequential: false }
    }

    /// The explicit sequential tiling: one tile covering every chunk
    /// (none for `nc == 0`), run inline by the drivers.
    pub fn sequential(nc: usize) -> Self {
        Self { ranges: even_ranges(nc, 1), sequential: true }
    }

    /// Whether the drivers will run tiles inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// The tiled chunk ranges, in chunk order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// The chunk count this tiling partitions.
    pub fn num_chunks(&self) -> usize {
        self.ranges.last().map_or(0, |r| r.1)
    }

    /// Carves `slab` (`width` elements per chunk, chunk-major) into
    /// disjoint per-tile views via `split_at_mut`.
    ///
    /// # Panics
    /// Panics if `slab.len() != num_chunks() * width`.
    pub fn split<'a, T>(&self, width: usize, slab: &'a mut [T]) -> Vec<Tile<'a, T>> {
        assert_eq!(
            slab.len(),
            self.num_chunks() * width,
            "slab length {} != {} chunks x width {width}",
            slab.len(),
            self.num_chunks(),
        );
        let mut out = Vec::with_capacity(self.ranges.len());
        let mut rest = slab;
        for &(c0, c1) in &self.ranges {
            let (head, tail) = rest.split_at_mut((c1 - c0) * width);
            rest = tail;
            out.push(Tile { c0, data: head });
        }
        out
    }

    /// Carves the BFS-family state vectors and the distance vector into
    /// per-tile [`ChunkSpan`]s (lane width `C` per chunk each).
    ///
    /// # Panics
    /// Panics if any vector's length is not `num_chunks() * C`.
    pub fn split_spans<'a, const C: usize>(
        &self,
        nxt: &'a mut StateVecs,
        d: &'a mut [f32],
    ) -> Vec<ChunkSpan<'a>> {
        let xs = self.split(C, &mut nxt.x);
        let gs = self.split(C, &mut nxt.g);
        let ps = self.split(C, &mut nxt.p);
        let ds = self.split(C, d);
        xs.into_iter()
            .zip(gs)
            .zip(ps)
            .zip(ds)
            .map(|(((x, g), p), d)| ChunkSpan {
                c0: x.c0,
                x: x.data,
                g: g.data,
                p: p.data,
                d: d.data,
            })
            .collect()
    }

    /// Runs `map` over every tile and merges the results **in tile
    /// order** with `merge` starting from `identity`. Parallel over the
    /// pool unless the tiling is sequential, in which case the tiles run
    /// inline on the calling thread (same merge order — bit-identical
    /// results for associative, identity-lawful `merge`).
    pub fn map_reduce<T, R, M, ID, MG>(&self, tiles: Vec<T>, map: M, identity: ID, merge: MG) -> R
    where
        T: Send,
        R: Send,
        M: Fn(T) -> R + Sync,
        ID: Fn() -> R + Sync,
        MG: Fn(R, R) -> R + Sync,
    {
        debug_assert_eq!(tiles.len(), self.ranges.len(), "tile list does not match tiling");
        map_reduce_tiles(self.sequential, tiles, map, identity, merge)
    }

    /// Runs `work` over every tile for its side effects (disjoint-slab
    /// writes). Sequential tilings run inline on the calling thread.
    pub fn for_each<T, W>(&self, tiles: Vec<T>, work: W)
    where
        T: Send,
        W: Fn(T) + Sync,
    {
        debug_assert_eq!(tiles.len(), self.ranges.len(), "tile list does not match tiling");
        for_each_tiles(self.sequential, tiles, work);
    }
}

/// Shared map-reduce runner: inline fold in tile order when sequential
/// (or a lone tile — merging it into `identity()` would only copy),
/// otherwise a pool reduction that still merges in tile order.
fn map_reduce_tiles<T, R, M, ID, MG>(
    sequential: bool,
    tiles: Vec<T>,
    map: M,
    identity: ID,
    merge: MG,
) -> R
where
    T: Send,
    R: Send,
    M: Fn(T) -> R + Sync,
    ID: Fn() -> R + Sync,
    MG: Fn(R, R) -> R + Sync,
{
    if sequential || tiles.len() <= 1 {
        let mut it = tiles.into_iter();
        return match it.next() {
            None => identity(),
            Some(t) => it.map(&map).fold(map(t), merge),
        };
    }
    tiles.into_par_iter().with_min_len(1).map(map).reduce(identity, merge)
}

/// Shared side-effect runner (see [`map_reduce_tiles`]).
fn for_each_tiles<T, W>(sequential: bool, tiles: Vec<T>, work: W)
where
    T: Send,
    W: Fn(T) + Sync,
{
    if sequential || tiles.len() <= 1 {
        tiles.into_iter().for_each(work);
        return;
    }
    tiles.into_par_iter().with_min_len(1).for_each(work);
}

/// A tile's exclusive view of one worklist slice: the sorted chunk ids
/// `ids`, slabs of the state/distance vectors covering the *contiguous
/// chunk range* `ids[0] ..= ids[last]` (interleaved non-worklist chunks
/// are carried inside the slab but never written), and the per-position
/// changed flags for exactly these ids.
pub struct WorklistSpan<'a> {
    /// Worklist position of `ids[0]` (for indexing per-position
    /// side tables built over the whole worklist).
    pub first_pos: usize,
    /// The worklist chunk ids this tile owns (sorted, non-empty).
    pub ids: &'a [u32],
    /// Next frontier values for chunks `ids[0] ..= ids[last]`.
    pub x: &'a mut [f32],
    /// Next auxiliary values (semiring-specific), same coverage.
    pub g: &'a mut [f32],
    /// Next parent values (sel-max), same coverage.
    pub p: &'a mut [f32],
    /// Distance vector slots, same coverage.
    pub d: &'a mut [f32],
    /// One changed lane mask per entry of `ids`, in order (0 = state
    /// unchanged, bit `r` set = row `r` of the chunk changed).
    pub changed: &'a mut [u32],
}

/// A tile's exclusive view of one worklist slice over a *single*
/// output slab — the one-vector counterpart of [`WorklistSpan`] for
/// kernels whose state is a plain label vector (weighted SSSP's
/// distance labels, PageRank's per-vertex SpMV accumulator) rather
/// than the BFS-family [`StateVecs`]. Same coverage rule: `data` spans
/// the contiguous chunk range `ids[0] ..= ids[last]` and interleaved
/// non-worklist chunks ride inside untouched.
pub struct WorklistSlab<'a, T> {
    /// Worklist position of `ids[0]`.
    pub first_pos: usize,
    /// The worklist chunk ids this tile owns (sorted, non-empty).
    pub ids: &'a [u32],
    /// Output slab covering chunks `ids[0] ..= ids[last]`, `width`
    /// elements per chunk.
    pub data: &'a mut [T],
    /// One changed lane mask per entry of `ids`, in order (0 = state
    /// unchanged, bit `r` set = row `r` of the chunk changed).
    pub changed: &'a mut [u32],
}

/// A partition of a **sorted chunk-id worklist** into contiguous
/// per-worker position ranges — the worklist twin of [`ChunkTiling`],
/// with the same determinism contract: tiles own disjoint `&mut` slabs
/// carved with `split_at_mut` (each tile's slab spans the contiguous
/// chunk range between its first and last worklist id, so sorted ids ⇒
/// disjoint slabs), results merge in tile order, and one effective
/// thread (or ≤ 1 entry) collapses to an inline sequential tile.
#[derive(Debug)]
pub struct WorklistTiling<'w> {
    ids: &'w [u32],
    ranges: Vec<(usize, usize)>,
    sequential: bool,
}

impl<'w> WorklistTiling<'w> {
    /// Tiles the worklist positions `0..ids.len()` for the current
    /// effective thread count, with the same static/dynamic policy as
    /// [`ChunkTiling::new`]. `ids` must be strictly increasing.
    pub fn new(ids: &'w [u32], schedule: Schedule) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "worklist not sorted/deduped");
        let threads = rayon::current_num_threads().max(1);
        if threads <= 1 || ids.len() <= 1 {
            return Self { ids, ranges: even_ranges(ids.len(), 1), sequential: true };
        }
        let parts = match schedule {
            Schedule::Static => threads,
            Schedule::Dynamic => threads * DYNAMIC_TILES_PER_THREAD,
        };
        Self { ids, ranges: even_ranges(ids.len(), parts), sequential: false }
    }

    /// Whether the drivers will run tiles inline on the calling thread.
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// The tiled worklist-position ranges, in order.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Carves the state vectors, the distance vector and the changed
    /// lane-mask slab into per-tile [`WorklistSpan`]s.
    ///
    /// # Panics
    /// Panics if the vectors are shorter than the largest worklist id
    /// requires, if their lengths disagree, or if `changed` does not
    /// have one mask per worklist entry.
    pub fn split_spans<'a, const C: usize>(
        &self,
        nxt: &'a mut StateVecs,
        d: &'a mut [f32],
        changed: &'a mut [u32],
    ) -> Vec<WorklistSpan<'a>>
    where
        'w: 'a,
    {
        assert_eq!(changed.len(), self.ids.len(), "one changed mask per worklist entry");
        assert_eq!(nxt.x.len(), d.len(), "state and distance vectors disagree");
        if let Some(&last) = self.ids.last() {
            assert!(
                (last as usize + 1) * C <= nxt.x.len(),
                "worklist id {last} out of range for {} lanes",
                nxt.x.len()
            );
        }
        let mut out = Vec::with_capacity(self.ranges.len());
        let (mut rx, mut rg, mut rp, mut rd, mut rc) =
            (&mut nxt.x[..], &mut nxt.g[..], &mut nxt.p[..], d, changed);
        let mut cursor = 0usize; // lanes consumed so far
        for &(p0, p1) in &self.ranges {
            let start = self.ids[p0] as usize * C;
            let end = (self.ids[p1 - 1] as usize + 1) * C;
            let carve = |rest: &'a mut [f32]| -> (&'a mut [f32], &'a mut [f32]) {
                let (_, r) = rest.split_at_mut(start - cursor);
                r.split_at_mut(end - start)
            };
            let (x, tx) = carve(std::mem::take(&mut rx));
            let (g, tg) = carve(std::mem::take(&mut rg));
            let (p, tp) = carve(std::mem::take(&mut rp));
            let (dd, td) = carve(std::mem::take(&mut rd));
            let (flags, tc) = std::mem::take(&mut rc).split_at_mut(p1 - p0);
            (rx, rg, rp, rd, rc) = (tx, tg, tp, td, tc);
            cursor = end;
            out.push(WorklistSpan {
                first_pos: p0,
                ids: &self.ids[p0..p1],
                x,
                g,
                p,
                d: dd,
                changed: flags,
            });
        }
        out
    }

    /// Carves a single `width`-per-chunk output slab and the changed
    /// lane-mask slab into per-tile [`WorklistSlab`]s — the
    /// generalization of [`split_spans`](Self::split_spans) the
    /// non-`StateVecs` kernels (SSSP, PageRank) tile with, under the
    /// same disjoint-`split_at_mut` / determinism contract.
    ///
    /// # Panics
    /// Panics if `slab` is shorter than the largest worklist id
    /// requires or `changed` does not have one mask per worklist entry.
    pub fn split_slab<'a, T>(
        &self,
        width: usize,
        slab: &'a mut [T],
        changed: &'a mut [u32],
    ) -> Vec<WorklistSlab<'a, T>>
    where
        'w: 'a,
    {
        assert_eq!(changed.len(), self.ids.len(), "one changed mask per worklist entry");
        if let Some(&last) = self.ids.last() {
            assert!(
                (last as usize + 1) * width <= slab.len(),
                "worklist id {last} out of range for {} slots of width {width}",
                slab.len()
            );
        }
        let mut out = Vec::with_capacity(self.ranges.len());
        let (mut rest, mut rc) = (slab, changed);
        let mut cursor = 0usize; // slots consumed so far
        for &(p0, p1) in &self.ranges {
            let start = self.ids[p0] as usize * width;
            let end = (self.ids[p1 - 1] as usize + 1) * width;
            let (_, r) = std::mem::take(&mut rest).split_at_mut(start - cursor);
            let (data, tail) = r.split_at_mut(end - start);
            let (flags, tc) = std::mem::take(&mut rc).split_at_mut(p1 - p0);
            (rest, rc) = (tail, tc);
            cursor = end;
            out.push(WorklistSlab { first_pos: p0, ids: &self.ids[p0..p1], data, changed: flags });
        }
        out
    }

    /// Runs `map` over every tile, merging **in tile order** — see
    /// [`ChunkTiling::map_reduce`] for the determinism contract.
    pub fn map_reduce<T, R, M, ID, MG>(&self, tiles: Vec<T>, map: M, identity: ID, merge: MG) -> R
    where
        T: Send,
        R: Send,
        M: Fn(T) -> R + Sync,
        ID: Fn() -> R + Sync,
        MG: Fn(R, R) -> R + Sync,
    {
        debug_assert_eq!(tiles.len(), self.ranges.len(), "tile list does not match tiling");
        map_reduce_tiles(self.sequential, tiles, map, identity, merge)
    }

    /// Runs `work` over every tile for its side effects.
    pub fn for_each<T, W>(&self, tiles: Vec<T>, work: W)
    where
        T: Send,
        W: Fn(T) + Sync,
    {
        debug_assert_eq!(tiles.len(), self.ranges.len(), "tile list does not match tiling");
        for_each_tiles(self.sequential, tiles, work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_partition_exactly() {
        for n in [0usize, 1, 5, 64, 65, 1000] {
            for parts in [1usize, 2, 3, 7, 64, 2000] {
                let r = even_ranges(n, parts);
                if n == 0 {
                    assert!(r.is_empty());
                    continue;
                }
                assert_eq!(r.len(), parts.clamp(1, n));
                assert_eq!(r[0].0, 0);
                assert_eq!(r.last().unwrap().1, n);
                assert!(r.windows(2).all(|w| w[0].1 == w[1].0), "gapless");
                assert!(r.iter().all(|&(a, b)| b > a), "no empty range");
                let max = r.iter().map(|&(a, b)| b - a).max().unwrap();
                let min = r.iter().map(|&(a, b)| b - a).min().unwrap();
                assert!(max - min <= 1, "near-equal: {r:?}");
            }
        }
    }

    #[test]
    fn empty_chunk_range_yields_no_tiles() {
        let tiling = ChunkTiling::new(0, Schedule::Dynamic);
        assert_eq!(tiling.num_chunks(), 0);
        assert!(tiling.ranges().is_empty());
        let mut slab: Vec<f32> = Vec::new();
        assert!(tiling.split(4, &mut slab).is_empty());
        // map_reduce over no tiles returns the identity.
        let r = tiling.map_reduce(Vec::<Tile<f32>>::new(), |_| 1usize, || 0usize, |a, b| a + b);
        assert_eq!(r, 0);
    }

    #[test]
    fn more_tiles_than_chunks_clamps() {
        // 3 chunks cannot make more than 3 tiles however many threads
        // the schedule would like to feed.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        pool.install(|| {
            let tiling = ChunkTiling::new(3, Schedule::Dynamic);
            assert!(tiling.ranges().len() <= 3, "ranges: {:?}", tiling.ranges());
            assert_eq!(tiling.num_chunks(), 3);
            let mut slab = vec![0u8; 3 * 2];
            let tiles = tiling.split(2, &mut slab);
            let total: usize = tiles.iter().map(|t| t.data.len()).sum();
            assert_eq!(total, 6);
        });
    }

    #[test]
    fn one_thread_fallback_is_sequential_and_equivalent() {
        let run_at = |threads: usize| {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            pool.install(|| {
                let tiling = ChunkTiling::new(16, Schedule::Dynamic);
                if threads == 1 {
                    assert!(tiling.is_sequential());
                    assert_eq!(tiling.ranges(), &[(0, 16)]);
                }
                let mut slab = vec![0u32; 16 * 4];
                let tiles = tiling.split(4, &mut slab);
                tiling.for_each(tiles, |t| {
                    for (k, v) in t.data.iter_mut().enumerate() {
                        *v = (t.c0 * 4 + k) as u32;
                    }
                });
                slab
            })
        };
        let seq = run_at(1);
        assert!(seq.iter().enumerate().all(|(i, &v)| v as usize == i));
        for threads in [2, 4, 8] {
            assert_eq!(run_at(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn split_covers_slab_disjointly() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let tiling = ChunkTiling::new(100, Schedule::Static);
            let mut slab = vec![0u32; 800];
            let tiles = tiling.split(8, &mut slab);
            // Tiles are contiguous, ordered, and cover everything once.
            let mut expect_c0 = 0;
            let mut total = 0;
            for t in &tiles {
                assert_eq!(t.c0, expect_c0);
                assert_eq!(t.data.len() % 8, 0);
                expect_c0 += t.data.len() / 8;
                total += t.data.len();
            }
            assert_eq!(total, 800);
            tiling.for_each(tiles, |t| t.data.fill(1));
            assert!(slab.iter().all(|&v| v == 1));
        });
    }

    #[test]
    #[should_panic(expected = "slab length")]
    fn wrong_slab_length_panics() {
        let tiling = ChunkTiling::new(4, Schedule::Static);
        let mut slab = vec![0f32; 7]; // not 4 * 2
        let _ = tiling.split(2, &mut slab);
    }

    #[test]
    fn split_slab_covers_worklist_chunks_disjointly() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            // A sparse worklist over 12 chunks of width 3; non-listed
            // chunks (1, 2, 4, 6, 8..) must never be written.
            let ids: Vec<u32> = vec![0, 3, 5, 7, 11];
            let tiling = WorklistTiling::new(&ids, Schedule::Dynamic);
            let mut slab = vec![0u32; 12 * 3];
            let mut flags = vec![0u32; ids.len()];
            let slabs = tiling.split_slab(3, &mut slab, &mut flags);
            assert_eq!(slabs.iter().map(|s| s.ids.len()).sum::<usize>(), ids.len());
            tiling.for_each(slabs, |s| {
                let base0 = s.ids[0] as usize * 3;
                for (k, &id) in s.ids.iter().enumerate() {
                    let off = id as usize * 3 - base0;
                    for v in &mut s.data[off..off + 3] {
                        *v = id + 1;
                    }
                    s.changed[k] = 1;
                }
            });
            for c in 0..12u32 {
                let expect = if ids.contains(&c) { c + 1 } else { 0 };
                assert!(
                    slab[c as usize * 3..(c as usize + 1) * 3].iter().all(|&v| v == expect),
                    "chunk {c} corrupted: {slab:?}"
                );
            }
            assert!(flags.iter().all(|&f| f == 1));
        });
    }

    #[test]
    fn map_reduce_merges_in_tile_order() {
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            let tiling = ChunkTiling::new(64, Schedule::Dynamic);
            let mut slab = vec![0u8; 64];
            let tiles = tiling.split(1, &mut slab);
            let order: Vec<usize> = tiling.map_reduce(
                tiles,
                |t| vec![t.c0],
                Vec::new,
                |mut a, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            assert!(order.windows(2).all(|w| w[0] < w[1]), "order: {order:?}");
        });
    }
}
