//! Connected components by algebraic label propagation — another §VI
//! "other graph algorithms" instance on the same chunked substrate.
//!
//! Every vertex starts with its own (1-based) label; each sweep replaces
//! a label by the minimum over the vertex's neighborhood and itself
//! (`x' = MIN(x, A ⊗_min x)` with unit-free `op2 = select-rhs`, i.e. the
//! tropical kernel with zero edge weights). The fixpoint assigns every
//! component the minimum vertex label it contains; the sweep count is
//! bounded by the largest component diameter.
//!
//! Unlike BFS there is no frontier, but the SlimWork idea still applies:
//! a chunk whose labels and whose *neighbors'* labels are stable cannot
//! change — detected here with the cheaper "nothing changed anywhere
//! last sweep" global test.

use rayon::prelude::*;
use slimsell_graph::VertexId;
use slimsell_simd::{SimdF32, SimdI32};

use crate::matrix::ChunkMatrix;

/// Connected-components result.
#[derive(Clone, Debug)]
pub struct ComponentsOutput {
    /// `label[v]` = smallest original vertex id in `v`'s component.
    pub label: Vec<VertexId>,
    /// Number of distinct components.
    pub count: usize,
    /// Propagation sweeps executed.
    pub iterations: usize,
}

/// Runs min-label propagation over the chunked structure.
pub fn connected_components<M, const C: usize>(matrix: &M) -> ComponentsOutput
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let np = s.n_padded();
    assert!(n < (1 << 24), "labels exceed f32 exact-integer range (n = {n})");

    // Labels are 1-based *original* ids so the final minimum is
    // meaningful before un-permutation; padding rows get +∞ (never the
    // minimum, never gathered).
    let perm = s.perm();
    let mut cur = vec![f32::INFINITY; np];
    for (r, c) in cur.iter_mut().enumerate().take(n) {
        *c = (perm.to_old(r as VertexId) + 1) as f32;
    }
    let mut nxt = cur.clone();

    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let cur_ref = &cur;
        let changed = nxt
            .par_chunks_mut(C)
            .enumerate()
            .map(|(i, out)| {
                let mut acc = SimdF32::<C>::load(&cur_ref[i * C..]);
                let before = acc;
                let col = s.col();
                let mut index = s.cs()[i];
                for _ in 0..s.cl()[i] {
                    let cols = SimdI32::<C>::load(&col[index..]);
                    let rhs = SimdF32::gather_or(cur_ref, cols, f32::INFINITY);
                    acc = acc.min(rhs);
                    index += C;
                }
                acc.store(out);
                acc.any_ne(before)
            })
            .reduce(|| false, |a, b| a | b);
        std::mem::swap(&mut cur, &mut nxt);
        if !changed || iterations > n {
            break;
        }
    }

    let label: Vec<VertexId> =
        (0..n).map(|old| cur[perm.to_new(old as VertexId) as usize] as VertexId - 1).collect();
    let mut distinct: Vec<VertexId> = label.clone();
    distinct.sort_unstable();
    distinct.dedup();
    ComponentsOutput { label, count: distinct.len(), iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::GraphBuilder;

    #[test]
    fn three_components() {
        let g = GraphBuilder::new(8).edges([(0, 1), (1, 2), (4, 5), (6, 7)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 8);
        let out = connected_components(&m);
        assert_eq!(out.count, 4); // {0,1,2}, {3}, {4,5}, {6,7}
        assert_eq!(out.label[0], 0);
        assert_eq!(out.label[2], 0);
        assert_eq!(out.label[3], 3);
        assert_eq!(out.label[5], 4);
        assert_eq!(out.label[7], 6);
    }

    #[test]
    fn matches_union_find_count() {
        for seed in [1, 2, 3] {
            let g = kronecker(10, 2.0, KroneckerParams::GRAPH500, seed);
            let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
            let out = connected_components(&m);
            assert_eq!(out.count, slimsell_graph::stats::connected_components(&g), "seed {seed}");
        }
    }

    #[test]
    fn labels_constant_within_component() {
        let g = kronecker(9, 2.0, KroneckerParams::GRAPH500, 4);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = connected_components(&m);
        for (u, v) in g.edges() {
            assert_eq!(out.label[u as usize], out.label[v as usize], "edge ({u},{v})");
        }
        // Each label is the minimum id of its component.
        for (v, &l) in out.label.iter().enumerate() {
            assert!(l as usize <= v);
            assert_eq!(out.label[l as usize], l, "label {l} must label itself");
        }
    }

    #[test]
    fn sigma_invariant() {
        let g = kronecker(9, 2.0, KroneckerParams::GRAPH500, 6);
        let a = connected_components(&SlimSellMatrix::<4>::build(&g, 1));
        let b = connected_components(&SlimSellMatrix::<4>::build(&g, g.num_vertices()));
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn path_takes_length_sweeps() {
        let n = 33;
        let g = GraphBuilder::new(n).edges((0..n as u32 - 1).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, n);
        let out = connected_components(&m);
        assert_eq!(out.count, 1);
        // Label 0 must walk the whole path: n-1 productive sweeps (+1).
        assert_eq!(out.iterations, n);
    }
}
