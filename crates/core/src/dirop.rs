//! Direction-optimized algebraic BFS — Figure 1's third curve.
//!
//! The paper notes that "the well-known direction-optimization \[3\] and
//! other work-avoidance schemes are orthogonal to our work and can be
//! implemented on top of SlimSell; see Figure 1" (§V). This module is
//! that composition: Beamer-style switching between
//!
//! * **top-down** steps — sparse expansion of an explicit frontier list,
//!   reading rows directly from the SlimSell structure (strided row
//!   access, no extra representation needed), used while the frontier is
//!   small; and
//! * **bottom-up** steps — the chunk-parallel SpMV of [`crate::bfs`]
//!   (tropical semiring), used while the frontier is large, where the
//!   vectorized kernel shines.
//!
//! The switch uses the classic α/β heuristic: go bottom-up when the
//! frontier's out-edge count exceeds `m/α`, return to top-down when the
//! frontier shrinks below `n/β`.

use std::time::Instant;

use slimsell_graph::{VertexId, UNREACHABLE};

use crate::bfs::{step, BfsOptions, BfsOutput, EngineScratch, Schedule};
use crate::counters::{IterStats, RunStats};
use crate::matrix::ChunkMatrix;
use crate::semiring::{Semiring, StateVecs, TropicalSemiring};
use crate::sweep::ExecutedSweep;
use crate::tiling::ChunkTiling;

/// Which direction an iteration executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepMode {
    /// Sparse frontier expansion.
    TopDown,
    /// Chunk-parallel SpMV.
    BottomUp,
}

/// Direction-optimization parameters (Beamer's α/β).
#[derive(Clone, Debug)]
pub struct DirOptOptions {
    /// Switch to bottom-up when frontier out-edges > `m / alpha`.
    pub alpha: f64,
    /// Switch back to top-down when frontier size < `n / beta`.
    pub beta: f64,
    /// Options for the bottom-up SpMV iterations.
    pub spmv: BfsOptions,
}

impl Default for DirOptOptions {
    fn default() -> Self {
        Self { alpha: 14.0, beta: 24.0, spmv: BfsOptions::default() }
    }
}

impl DirOptOptions {
    /// Sets the sweep mode of the bottom-up SpMV iterations (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: crate::sweep::SweepMode) -> Self {
        self.spmv = self.spmv.sweep(sweep);
        self
    }

    /// Sets the schedule of the bottom-up SpMV iterations (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.spmv = self.spmv.schedule(schedule);
        self
    }

    /// Sets the full sweep configuration of the bottom-up SpMV
    /// iterations (builder).
    #[must_use]
    pub fn config(mut self, config: crate::sweep::SweepConfig) -> Self {
        self.spmv = self.spmv.config(config);
        self
    }
}

/// Output of a direction-optimized run: distances plus the mode sequence.
#[derive(Clone, Debug)]
pub struct DirOptOutput {
    /// BFS output (distances; parents via [`crate::dp_transform`]).
    pub bfs: BfsOutput,
    /// The direction chosen for each iteration.
    pub modes: Vec<StepMode>,
}

/// Runs direction-optimized BFS (tropical semiring) from `root`.
pub fn run_diropt<M, const C: usize>(
    matrix: &M,
    root: VertexId,
    opts: &DirOptOptions,
) -> DirOptOutput
where
    M: ChunkMatrix<C>,
{
    type S = TropicalSemiring;
    assert!(
        opts.spmv.mask.is_none(),
        "run_diropt does not take a vertex mask; use run_descriptor for masked \
         direction-optimized BFS"
    );
    let s = matrix.structure();
    let n = s.n();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let root_p = s.perm().to_new(root) as usize;
    let np = s.n_padded();
    let m2 = s.arcs(); // 2m

    let mut cur = StateVecs::new(np);
    let mut nxt = StateVecs::new(np);
    let mut d = vec![0.0f32; np];
    S::init(&mut cur, &mut d, n, root_p);

    let mut scratch = EngineScratch::new();
    let track_wl = opts.spmv.config.sweep.uses_worklist();
    if track_wl {
        // Worklist invariant for the bottom-up steps (see crate::bfs):
        // outside the worklist, nxt already equals cur. Top-down steps
        // write cur in place, so every chunk they touch goes on the
        // pending list and the next bottom-up sweep (worklist or
        // adaptive) rewrites it.
        S::clone_state(&cur, &mut nxt);
        scratch.pending.push(((root_p / C) as u32, 1u32 << (root_p % C)));
    }

    let mut frontier: Vec<u32> = vec![root_p as u32];
    let mut frontier_edges: u64 = s.row_len(root_p) as u64;
    let mut stats = RunStats::default();
    let mut modes = Vec::new();
    let mut depth = 0u32;
    let mut mode = StepMode::TopDown;

    while !frontier.is_empty() {
        depth += 1;
        // Heuristic switch.
        mode = match mode {
            StepMode::TopDown if frontier_edges as f64 > m2 as f64 / opts.alpha => {
                StepMode::BottomUp
            }
            StepMode::BottomUp if (frontier.len() as f64) < n as f64 / opts.beta => {
                StepMode::TopDown
            }
            m => m,
        };
        modes.push(mode);
        let t0 = Instant::now();
        match mode {
            StepMode::TopDown => {
                let mut next = Vec::new();
                let mut scanned = 0u64;
                for &v in &frontier {
                    for w in s.row_neighbors(v as usize) {
                        scanned += 1;
                        if cur.x[w as usize] == f32::INFINITY {
                            cur.x[w as usize] = depth as f32;
                            if track_wl {
                                scratch.pending.push((w / C as u32, 1u32 << (w as usize % C)));
                            }
                            next.push(w);
                        }
                    }
                }
                frontier_edges = next.iter().map(|&w| s.row_len(w as usize) as u64).sum();
                frontier = next;
                // Not an SpMV sweep: the default Full tag with
                // worklist_len == 0 marks it as a top-down step (see
                // IterStats::sweep_mode).
                stats.iters.push(IterStats {
                    elapsed: t0.elapsed(),
                    col_steps: scanned,
                    cells: scanned,
                    changed: !frontier.is_empty(),
                    ..Default::default()
                });
            }
            StepMode::BottomUp => {
                let mut it = step::<M, S, C>(
                    matrix,
                    &cur,
                    &mut nxt,
                    &mut d,
                    depth as f32,
                    &opts.spmv,
                    &mut scratch,
                );
                // Recover the new frontier (changed entries) for the
                // heuristic and a possible switch back to top-down. The
                // scan range follows the dispatcher the step actually
                // ran (it.sweep_mode), not the configured policy — an
                // adaptive step may have swept either way.
                let next: Vec<u32> = if it.sweep_mode == ExecutedSweep::Worklist {
                    // The harvested pending list holds exactly the
                    // changed chunks with their per-lane change masks
                    // (tropical change mask ⟺ nxt.x ≠ cur.x), in
                    // ascending chunk order — walking its set bits
                    // yields the same frontier as rescanning every
                    // lane of every worklist chunk, at one probe per
                    // discovered vertex.
                    let mut out = Vec::new();
                    for &(id, lanes) in &scratch.pending {
                        it.frontier_probes += u64::from(lanes.count_ones());
                        let lo = id as usize * C;
                        let mut rest = lanes;
                        while rest != 0 {
                            let l = rest.trailing_zeros() as usize;
                            rest &= rest - 1;
                            let v = lo + l;
                            debug_assert!(v < n && nxt.x[v] != cur.x[v]);
                            out.push(v as u32);
                        }
                    }
                    out
                } else {
                    // Parallel over contiguous vertex ranges; the
                    // ordered range merge keeps the frontier sorted
                    // exactly like the sequential scan. A full sweep
                    // leaves no change-mask trail, so every vertex is
                    // probed.
                    it.frontier_probes += n as u64;
                    let (nxt_x, cur_x) = (&nxt.x, &cur.x);
                    let tiling = ChunkTiling::new(n, Schedule::Dynamic);
                    tiling.map_reduce(
                        tiling.ranges().to_vec(),
                        |(v0, v1)| {
                            (v0..v1)
                                .filter(|&v| nxt_x[v] != cur_x[v])
                                .map(|v| v as u32)
                                .collect::<Vec<_>>()
                        },
                        Vec::new,
                        |mut a, mut b| {
                            a.append(&mut b);
                            a
                        },
                    )
                };
                std::mem::swap(&mut cur, &mut nxt);
                frontier_edges = next.iter().map(|&w| s.row_len(w as usize) as u64).sum();
                frontier = next;
                it.elapsed = t0.elapsed();
                it.changed = !frontier.is_empty();
                stats.iters.push(it);
            }
        }
    }

    let perm = s.perm();
    let dist: Vec<u32> = (0..n)
        .map(|old| {
            let v = cur.x[perm.to_new(old as VertexId) as usize];
            if v.is_finite() {
                v as u32
            } else {
                UNREACHABLE
            }
        })
        .collect();
    DirOptOutput { bfs: BfsOutput { dist, parent: None, stats }, modes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn matches_reference_on_path() {
        let n = 50u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let slim = SlimSellMatrix::<4>::build(&g, 50);
        let out = run_diropt(&slim, 0, &DirOptOptions::default());
        assert_eq!(out.bfs.dist, serial_bfs(&g, 0).dist);
        // A path frontier never grows: all steps stay top-down.
        assert!(out.modes.iter().all(|&m| m == StepMode::TopDown));
    }

    #[test]
    fn switches_to_bottom_up_on_dense_graph() {
        let g = kronecker(10, 16.0, KroneckerParams::GRAPH500, 3);
        let root = (0..1024u32).find(|&v| g.degree(v) > 0).unwrap();
        let slim = SlimSellMatrix::<8>::build(&g, 1024);
        let out = run_diropt(&slim, root, &DirOptOptions::default());
        assert_eq!(out.bfs.dist, serial_bfs(&g, root).dist);
        assert!(
            out.modes.contains(&StepMode::BottomUp),
            "dense power-law graph should trigger bottom-up, modes = {:?}",
            out.modes
        );
    }

    #[test]
    fn forced_bottom_up_matches() {
        // alpha = 0 forces bottom-up from the first iteration.
        let g = kronecker(9, 8.0, KroneckerParams::GRAPH500, 1);
        let root = (0..512u32).find(|&v| g.degree(v) > 0).unwrap();
        let slim = SlimSellMatrix::<4>::build(&g, 64);
        // alpha = 0 ⇒ threshold m/α = ∞ ⇒ never leaves top-down.
        let opts = DirOptOptions { alpha: 0.0, beta: f64::INFINITY, ..Default::default() };
        let always_td = run_diropt(&slim, root, &opts);
        // alpha = ∞ ⇒ threshold 0 ⇒ immediate bottom-up; beta = ∞ keeps it.
        let opts =
            DirOptOptions { alpha: f64::INFINITY, beta: f64::INFINITY, ..Default::default() };
        let always_bu = run_diropt(&slim, root, &opts);
        assert_eq!(always_td.bfs.dist, always_bu.bfs.dist);
        assert!(always_bu.modes.iter().all(|&m| m == StepMode::BottomUp));
    }
}
