//! Single-source shortest paths over the tropical semiring with *real*
//! edge weights — the boundary case that motivates SlimSell's scoping.
//!
//! For weighted graphs the matrix values are the weights themselves, so
//! they cannot be re-derived from `col`: the explicit `val` array of
//! Sell-C-σ is mandatory (§III-B limits SlimSell to unweighted graphs).
//! The same min-plus kernel then computes SSSP as a Bellman–Ford-style
//! fixpoint: `x' = MIN(ADD(rhs, vals), x)` until no label improves.
//!
//! Unlike BFS, SSSP is label-*correcting*: a finite label can improve in
//! a later iteration, so the SlimWork skip criterion ("all labels
//! finite") is unsound here and deliberately absent — an instructive
//! ablation of where each optimization applies. What *is* sound is the
//! worklist machinery of [`crate::worklist`]: a chunk's labels can only
//! improve when a chunk it gathers from (or the chunk itself) changed
//! in the previous sweep, so the same dependency-graph + exact bit-wise
//! change detection that drives frontier-proportional BFS turns the
//! Bellman–Ford fixpoint from "re-run every chunk every sweep" into
//! sweeps proportional to the still-relaxing region —
//! [`SsspOptions::sweep`] selects full sweeps, worklist sweeps, or (the
//! default) the adaptive controller of [`crate::sweep`], with distances
//! bit-identical in every mode.
//!
//! Each relaxation sweep runs tile-parallel over [`crate::tiling`]
//! chunk tiles (full sweeps) or [`WorklistTiling`] slabs (worklist
//! sweeps), writing disjoint slabs of the next label vector; the
//! per-chunk min-plus math is independent of tile boundaries, so
//! distances are bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{sssp, WeightedSellCSigma};
//! use slimsell_graph::weighted::WeightedCsrGraph;
//!
//! // The cheap 2-hop route (0→1→2, cost 3) beats the direct edge (10).
//! let g = WeightedCsrGraph::from_edges(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]);
//! let m = WeightedSellCSigma::<4>::build(&g, 3);
//! let out = sssp(&m, 0);
//! assert_eq!(out.dist, vec![0.0, 1.0, 3.0]);
//! ```

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use slimsell_graph::weighted::WeightedCsrGraph;
use slimsell_graph::{Permutation, VertexId};
use slimsell_simd::{SimdF32, SimdI32};

use crate::counters::{IterStats, RunStats};
use crate::mask::VertexMask;
use crate::semiring::lanes_ne_bits;
use crate::sweep::{resolve_sweep, AdaptiveController, ExecutedSweep, SweepConfig, SweepMode};
use crate::tiling::{ChunkTiling, Schedule, WorklistTiling};
use crate::worklist::{full_lane_mask, ActivationState, ChunkDepGraph};

/// Sell-C-σ with real-valued weights: structure arrays plus a weight
/// `val` array (padding cells hold `+∞`, the min-plus annihilator).
#[derive(Clone, Debug)]
pub struct WeightedSellCSigma<const C: usize> {
    n: usize,
    n_padded: usize,
    cs: Vec<usize>,
    cl: Vec<u32>,
    col: Vec<i32>,
    val: Vec<f32>,
    perm: Permutation,
    /// Chunk dependency graph, built lazily on first worklist-mode run
    /// (non-worklist paths pay nothing) — same layout rules as the
    /// unweighted [`crate::SellStructure`].
    dep: OnceLock<ChunkDepGraph>,
}

impl<const C: usize> WeightedSellCSigma<C> {
    /// Builds from a weighted graph with σ-scoped degree sorting (same
    /// layout rules as the unweighted structure).
    pub fn build(g: &WeightedCsrGraph, sigma: usize) -> Self {
        let n = g.num_vertices();
        assert!(n > 0, "empty graph");
        let sigma = sigma.clamp(1, n);
        let gs = g.structure();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        if sigma > 1 {
            for window in order.chunks_mut(sigma) {
                window.sort_by_key(|&v| (std::cmp::Reverse(gs.degree(v)), v));
            }
        }
        let perm = Permutation::from_new_to_old(order);
        let nc = n.div_ceil(C);
        let n_padded = nc * C;
        let mut cl = vec![0u32; nc];
        for (i, c) in cl.iter_mut().enumerate() {
            let hi = ((i + 1) * C).min(n);
            *c = (i * C..hi)
                .map(|r| gs.degree(perm.to_old(r as VertexId)) as u32)
                .max()
                .unwrap_or(0);
        }
        let mut cs = vec![0usize; nc];
        let mut total = 0usize;
        for (s, &l) in cs.iter_mut().zip(&cl) {
            *s = total;
            total += l as usize * C;
        }
        let mut col = vec![-1i32; total];
        let mut val = vec![f32::INFINITY; total];
        for (i, &base) in cs.iter().enumerate() {
            for lane in 0..C {
                let r = i * C + lane;
                if r >= n {
                    continue;
                }
                let old = perm.to_old(r as VertexId);
                for (j, (w, wt)) in g.neighbors(old).enumerate() {
                    col[base + j * C + lane] = perm.to_new(w) as i32;
                    val[base + j * C + lane] = wt;
                }
            }
        }
        Self { n, n_padded, cs, cl, col, val, perm, dep: OnceLock::new() }
    }

    /// Storage cells (`val` + `col` + `cs` + `cl`) — twice SlimSell's,
    /// necessarily.
    pub fn storage_cells(&self) -> usize {
        self.val.len() + self.col.len() + self.cs.len() + self.cl.len()
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.n_padded / C
    }

    /// Builds a [`VertexMask`] over this matrix's permuted chunk
    /// layout from *original* graph ids (each mapped through the
    /// σ-sort permutation), suitable for [`SsspOptions::mask`].
    pub fn mask_from_original(&self, ids: impl IntoIterator<Item = VertexId>) -> VertexMask {
        VertexMask::from_permuted(self.n, C, ids.into_iter().map(|v| self.perm.to_new(v) as usize))
    }

    /// The chunk dependency graph (see
    /// [`SellStructure::dep_graph`](crate::SellStructure::dep_graph)):
    /// computed once per matrix on first call; drives the worklist and
    /// adaptive sweep modes.
    pub fn dep_graph(&self) -> &ChunkDepGraph {
        self.dep.get_or_init(|| {
            ChunkDepGraph::build(self.num_chunks(), &self.cs, &self.cl, &self.col, C)
        })
    }
}

/// SSSP options: sweep strategy, scheduling and an optional vertex
/// mask. Unlike [`BfsOptions`](crate::BfsOptions) there is no SlimWork
/// knob — the skip criterion is unsound for label-correcting relaxation
/// (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct SsspOptions {
    /// Sweep strategy and chunk scheduling policy (defaults to the
    /// `SLIMSELL_SWEEP` env var, adaptive when unset, with dynamic
    /// scheduling). Distances are bit-identical in every mode.
    pub config: SweepConfig,
    /// Optional vertex mask (permuted chunk layout, `C` lanes):
    /// relaxation only updates labels of vertices inside the mask;
    /// vertices outside stay at `+∞` and gathers from them contribute
    /// the min-plus identity — shortest paths in the induced subgraph.
    pub mask: Option<Arc<VertexMask>>,
}

impl SsspOptions {
    /// Sets the sweep mode, keeping the schedule (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Sets the schedule, keeping the sweep mode (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the full sweep configuration (builder).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the vertex mask (builder).
    #[must_use]
    pub fn mask(mut self, mask: Option<Arc<VertexMask>>) -> Self {
        self.mask = mask;
        self
    }

    /// Migration shim for the pre-PR-10 `sweep` field.
    #[deprecated(note = "set `config.sweep` or use the `.sweep(..)` builder")]
    pub fn set_sweep(&mut self, sweep: SweepMode) {
        self.config.sweep = sweep;
    }

    /// Migration shim for the pre-PR-10 `schedule` field.
    #[deprecated(note = "set `config.schedule` or use the `.schedule(..)` builder")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.config.schedule = schedule;
    }
}

/// SSSP result.
#[derive(Clone, Debug)]
pub struct SsspOutput {
    /// Shortest-path distances in original ids (`∞` = unreachable).
    pub dist: Vec<f32>,
    /// Relaxation sweeps executed (≤ n; typically ≈ hop diameter).
    pub iterations: usize,
    /// Per-sweep statistics: sweep-mode trace, column steps, worklist
    /// sizes, activation probes.
    pub stats: RunStats,
}

/// One chunk of the min-plus relaxation: gathers the current labels,
/// folds `cl[i]` column steps, stores the chunk's next labels into
/// `out`. Returns whether any lane improved numerically (the
/// fixpoint-termination signal).
#[inline]
fn relax_chunk<const C: usize>(
    m: &WeightedSellCSigma<C>,
    cur: &[f32],
    i: usize,
    out: &mut [f32],
) -> bool {
    let mut acc = SimdF32::<C>::load(&cur[i * C..]);
    let before = acc;
    let mut index = m.cs[i];
    for _ in 0..m.cl[i] {
        let cols = SimdI32::<C>::load(&m.col[index..]);
        let vals = SimdF32::<C>::load(&m.val[index..]);
        let rhs = SimdF32::gather_or(cur, cols, f32::INFINITY);
        // ∞ + w = ∞ keeps unreached neighbors neutral.
        acc = rhs.add(vals).min(acc);
        index += C;
    }
    acc.store(out);
    acc.any_ne(before)
}

/// Masked wrapper around [`relax_chunk`]: a fully masked chunk forwards
/// its labels verbatim (no relaxation, returns `(false, true)` for
/// (changed, skipped)); under a partial mask the masked-out lanes are
/// patched back to their previous labels before the change test, so
/// masked vertices stay exactly at `+∞` (or wherever they started).
#[inline]
fn relax_chunk_masked<const C: usize>(
    m: &WeightedSellCSigma<C>,
    cur: &[f32],
    i: usize,
    out: &mut [f32],
    mask: Option<&VertexMask>,
) -> (bool, bool) {
    let Some(mk) = mask else {
        return (relax_chunk(m, cur, i, out), false);
    };
    if mk.allowed_real(i) == 0 {
        out.copy_from_slice(&cur[i * C..(i + 1) * C]);
        return (false, true);
    }
    let allowed = mk.allowed(i);
    if allowed == full_lane_mask(C) {
        return (relax_chunk(m, cur, i, out), false);
    }
    relax_chunk(m, cur, i, out);
    for (l, slot) in out.iter_mut().enumerate() {
        if allowed & (1 << l) == 0 {
            *slot = cur[i * C + l];
        }
    }
    (lanes_ne_bits::<C>(&cur[i * C..], out) != 0, false)
}

/// Runs min-plus SSSP from `root` until the fixpoint, with the default
/// options (env-selected sweep mode, dynamic scheduling).
pub fn sssp<const C: usize>(m: &WeightedSellCSigma<C>, root: VertexId) -> SsspOutput {
    sssp_with(m, root, &SsspOptions::default())
}

/// Runs min-plus SSSP from `root` until the fixpoint, under the given
/// sweep policy. The same correctness architecture as the BFS engine:
/// the label vector is double-buffered, worklist sweeps maintain the
/// invariant that outside the worklist `nxt` equals `cur` bit-for-bit
/// (established by the initial clone, preserved because a chunk leaves
/// the worklist only after writing back exactly its previous labels),
/// and adaptive full sweeps track per-chunk bit-exact change flags so
/// every full→worklist transition re-seeds correctly.
pub fn sssp_with<const C: usize>(
    m: &WeightedSellCSigma<C>,
    root: VertexId,
    opts: &SsspOptions,
) -> SsspOutput {
    let n = m.n;
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let root_p = m.perm.to_new(root) as usize;
    let mask = opts.mask.as_deref();
    if let Some(mk) = mask {
        assert_eq!(
            (mk.n(), mk.lanes()),
            (n, C),
            "mask built for n={} C={} used with a weighted structure of n={n} C={C}",
            mk.n(),
            mk.lanes(),
        );
        assert!(mk.contains(root_p), "root {root} is not in the vertex mask");
    }
    let mut cur = vec![f32::INFINITY; m.n_padded];
    cur[root_p] = 0.0;
    let mut nxt = cur.clone();

    let nc = m.num_chunks();
    let tiling = ChunkTiling::new(nc, opts.config.schedule);
    let mut act = ActivationState::new();
    let mut ctl = AdaptiveController::new();
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut full_changed: Vec<u32> = Vec::new();
    if opts.config.sweep.uses_worklist() {
        // Only the root's label differs from +∞, so only dependents
        // gathering the root's lane can produce a different output.
        pending.push(((root_p / C) as u32, 1u32 << (root_p % C)));
    }
    // Adaptive full sweeps must track changes to re-seed the worklist.
    let track = opts.config.sweep == SweepMode::Adaptive;

    let mut stats = RunStats::default();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let t0 = Instant::now();
        // Short-circuit before touching `dep_graph()`: pure full-sweep
        // runs must not force the lazy dependency-graph build.
        let (exec, seeded) = match opts.config.sweep {
            SweepMode::Full => (ExecutedSweep::Full, None),
            _ => resolve_sweep(
                opts.config.sweep,
                &mut ctl,
                &mut act,
                m.dep_graph(),
                &mut pending,
                nc,
                mask,
            ),
        };
        let cur_ref = &cur;
        let (changed, col_steps, skipped, wl_len, changed_chunks);
        match exec {
            ExecutedSweep::Full if track => {
                full_changed.clear();
                full_changed.resize(nc, 0);
                let tiles: Vec<_> = tiling
                    .split(C, &mut nxt)
                    .into_iter()
                    .zip(tiling.split(1, &mut full_changed))
                    .collect();
                (changed, col_steps, skipped) = tiling.map_reduce(
                    tiles,
                    |(t, f)| {
                        let mut acc = (false, 0u64, 0usize);
                        for (k, (out, flag)) in
                            t.data.chunks_mut(C).zip(f.data.iter_mut()).enumerate()
                        {
                            let i = t.c0 + k;
                            let (adv, skip) = relax_chunk_masked(m, cur_ref, i, out, mask);
                            acc.0 |= adv;
                            *flag = lanes_ne_bits::<C>(&cur_ref[i * C..], out);
                            if skip {
                                acc.2 += 1;
                            } else {
                                acc.1 += m.cl[i] as u64;
                            }
                        }
                        acc
                    },
                    || (false, 0, 0),
                    |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2),
                );
                pending.clear();
                pending.extend(
                    full_changed
                        .iter()
                        .enumerate()
                        .filter(|(_, &f)| f != 0)
                        .map(|(i, &f)| (i as u32, f)),
                );
                wl_len = nc;
                changed_chunks = pending.len();
            }
            ExecutedSweep::Full => {
                let tiles = tiling.split(C, &mut nxt);
                (changed, col_steps, skipped) = tiling.map_reduce(
                    tiles,
                    |t| {
                        let mut acc = (false, 0u64, 0usize);
                        for (k, out) in t.data.chunks_mut(C).enumerate() {
                            let i = t.c0 + k;
                            let (adv, skip) = relax_chunk_masked(m, cur_ref, i, out, mask);
                            acc.0 |= adv;
                            if skip {
                                acc.2 += 1;
                            } else {
                                acc.1 += m.cl[i] as u64;
                            }
                        }
                        acc
                    },
                    || (false, 0, 0),
                    |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2),
                );
                wl_len = nc;
                changed_chunks = 0;
            }
            ExecutedSweep::Worklist => {
                let (ids, flags) = act.split();
                wl_len = ids.len();
                let wt = WorklistTiling::new(ids, opts.config.schedule);
                let slabs = wt.split_slab(C, &mut nxt, flags);
                (changed, col_steps, skipped) = wt.map_reduce(
                    slabs,
                    |s| {
                        let base0 = s.ids[0] as usize * C;
                        let mut acc = (false, 0u64, 0usize);
                        for (k, &id) in s.ids.iter().enumerate() {
                            let i = id as usize;
                            let off = i * C - base0;
                            let out = &mut s.data[off..off + C];
                            let (adv, skip) = relax_chunk_masked(m, cur_ref, i, out, mask);
                            acc.0 |= adv;
                            s.changed[k] = lanes_ne_bits::<C>(&cur_ref[i * C..], out);
                            if skip {
                                acc.2 += 1;
                            } else {
                                acc.1 += m.cl[i] as u64;
                            }
                        }
                        acc
                    },
                    || (false, 0, 0),
                    |a, b| (a.0 | b.0, a.1 + b.1, a.2 + b.2),
                );
                changed_chunks = act.collect_changed_into(&mut pending);
            }
        }
        stats.iters.push(IterStats {
            elapsed: t0.elapsed(),
            sweep_mode: exec,
            chunks_processed: wl_len - skipped,
            chunks_skipped: skipped,
            chunks_not_on_worklist: nc - wl_len,
            worklist_len: wl_len,
            activations: seeded.unwrap_or(0),
            changed_chunks,
            col_steps,
            cells: col_steps * C as u64,
            active_cells: 0, // lane utilization is measured by the BFS family only
            changed,
            ..Default::default()
        });
        std::mem::swap(&mut cur, &mut nxt);
        if !changed || iterations > n {
            break;
        }
    }

    let dist = (0..n).map(|old| cur[m.perm.to_new(old as VertexId) as usize]).collect();
    SsspOutput { dist, iterations, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::Xoshiro256pp;
    use slimsell_graph::weighted::{dijkstra, WeightedCsrGraph};

    fn assert_close(a: &[f32], b: &[f32]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            if x.is_infinite() || y.is_infinite() {
                assert_eq!(x.is_infinite(), y.is_infinite(), "vertex {i}: {x} vs {y}");
            } else {
                assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "vertex {i}: {x} vs {y}");
            }
        }
    }

    fn opts(sweep: SweepMode) -> SsspOptions {
        SsspOptions::default().sweep(sweep)
    }

    #[test]
    fn matches_dijkstra_on_sample() {
        let g = WeightedCsrGraph::from_edges(
            5,
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0), (2, 3, 1.0), (0, 4, 10.0), (3, 4, 1.0)],
        );
        let m = WeightedSellCSigma::<4>::build(&g, 5);
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let out = sssp_with(&m, 0, &opts(sweep));
            assert_close(&out.dist, &dijkstra(&g, 0));
            assert_eq!(out.dist, vec![0.0, 1.0, 3.0, 4.0, 5.0], "{sweep:?}");
        }
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for case in 0..8 {
            let n = 40 + rng.bounded_usize(60);
            let m_edges = 2 * n;
            let edges: Vec<(u32, u32, f32)> = (0..m_edges)
                .map(|_| {
                    (
                        rng.bounded_usize(n) as u32,
                        rng.bounded_usize(n) as u32,
                        (rng.next_f64() * 10.0) as f32 + 0.1,
                    )
                })
                .collect();
            let g = WeightedCsrGraph::from_edges(n, edges);
            if g.num_edges() == 0 {
                continue;
            }
            let m = WeightedSellCSigma::<8>::build(&g, n);
            for root in [0u32, (n / 2) as u32] {
                let out = sssp(&m, root);
                assert_close(&out.dist, &dijkstra(&g, root));
                assert!(out.iterations <= n, "case {case}: {} iterations", out.iterations);
            }
        }
    }

    #[test]
    fn all_sweep_modes_bit_identical() {
        // The worklist/adaptive sweeps must be pure work-avoidance
        // transformations: same distances to the bit, same sweep count.
        let mut rng = Xoshiro256pp::seed_from_u64(4242);
        for _ in 0..6 {
            let n = 50 + rng.bounded_usize(80);
            let edges: Vec<(u32, u32, f32)> = (0..3 * n)
                .map(|_| {
                    (
                        rng.bounded_usize(n) as u32,
                        rng.bounded_usize(n) as u32,
                        (rng.next_f64() * 5.0) as f32 + 0.05,
                    )
                })
                .collect();
            let g = WeightedCsrGraph::from_edges(n, edges);
            let m = WeightedSellCSigma::<4>::build(&g, n);
            let root = (n / 3) as u32;
            let full = sssp_with(&m, root, &opts(SweepMode::Full));
            for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
                let out = sssp_with(&m, root, &opts(sweep));
                let full_bits: Vec<u32> = full.dist.iter().map(|x| x.to_bits()).collect();
                let out_bits: Vec<u32> = out.dist.iter().map(|x| x.to_bits()).collect();
                assert_eq!(out_bits, full_bits, "{sweep:?} labels diverged");
                assert_eq!(out.iterations, full.iterations, "{sweep:?} sweep count diverged");
                assert!(
                    out.stats.total_col_steps() <= full.stats.total_col_steps(),
                    "{sweep:?} did more relaxation work than the full sweep"
                );
            }
        }
    }

    #[test]
    fn worklist_reduces_relaxation_work_on_a_path() {
        // A long weighted path: the relaxing region is a wavefront, so
        // worklist sweeps must execute far fewer column steps than the
        // full Bellman-Ford re-run while agreeing bit-for-bit.
        let n = 512u32;
        let edges: Vec<(u32, u32, f32)> =
            (0..n - 1).map(|v| (v, v + 1, 1.0 + (v % 7) as f32 * 0.25)).collect();
        let g = WeightedCsrGraph::from_edges(n as usize, edges);
        let m = WeightedSellCSigma::<4>::build(&g, 1);
        let full = sssp_with(&m, 0, &opts(SweepMode::Full));
        let wl = sssp_with(&m, 0, &opts(SweepMode::Worklist));
        assert_eq!(
            wl.dist.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            full.dist.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(wl.iterations, full.iterations);
        assert!(
            wl.stats.total_col_steps() < full.stats.total_col_steps() / 4,
            "worklist {} not ≪ full {}",
            wl.stats.total_col_steps(),
            full.stats.total_col_steps()
        );
        assert!(wl.stats.total_not_on_worklist() > 0);
        assert!(wl.stats.total_activations() > 0);
        // Counter coherence per sweep.
        let nc = m.num_chunks();
        for it in &wl.stats.iters {
            assert_eq!(it.chunks_processed, it.worklist_len);
            assert_eq!(it.chunks_not_on_worklist, nc - it.worklist_len);
            assert_eq!(it.sweep_mode, ExecutedSweep::Worklist);
        }
        // Adaptive stays in the worklist regime on a wavefront.
        let ad = sssp_with(&m, 0, &opts(SweepMode::Adaptive));
        assert_eq!(ad.stats.mode_switches(), 0);
        assert_eq!(ad.stats.total_col_steps(), wl.stats.total_col_steps());
    }

    #[test]
    fn label_correcting_beats_greedy_hop_order() {
        // Long cheap path vs short expensive edge: the min-plus fixpoint
        // must pick the cheap 3-hop route (cost 3) over the 1-hop edge
        // (cost 10) — labels improve after first becoming finite, the
        // reason SlimWork is unsound for SSSP. Every sweep mode must
        // get this right (the worklist must keep re-listing chunks
        // whose labels keep improving).
        let g =
            WeightedCsrGraph::from_edges(4, [(0, 3, 10.0), (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let m = WeightedSellCSigma::<4>::build(&g, 4);
        for sweep in [SweepMode::Full, SweepMode::Worklist, SweepMode::Adaptive] {
            let out = sssp_with(&m, 0, &opts(sweep));
            assert_eq!(out.dist[3], 3.0, "{sweep:?}");
            assert!(out.iterations >= 3, "{sweep:?}");
        }
    }

    #[test]
    fn dep_graph_is_lazy_and_consistent() {
        // sigma = 1 keeps vertex ids equal to permuted positions.
        let g = WeightedCsrGraph::from_edges(16, [(0, 15, 1.0), (3, 8, 2.0), (8, 9, 0.5)]);
        let m = WeightedSellCSigma::<4>::build(&g, 1);
        let dep = m.dep_graph();
        assert_eq!(dep.num_chunks(), m.num_chunks());
        for j in 0..dep.num_chunks() {
            let d = dep.dependents(j);
            assert!(d.contains(&(j as u32)), "missing self edge of {j}");
            assert!(d.windows(2).all(|w| w[0] < w[1]), "unsorted deps of {j}");
        }
        // 0-15 edge crosses chunks 0 and 3: mutual dependency.
        assert!(dep.dependents(0).contains(&3));
        assert!(dep.dependents(3).contains(&0));
    }

    #[test]
    fn weighted_storage_is_double_slimsell() {
        let g =
            WeightedCsrGraph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 2.0), (4, 5, 2.0)]);
        let m = WeightedSellCSigma::<4>::build(&g, 6);
        let slim = crate::matrix::SlimSellMatrix::<4>::build(g.structure(), 6);
        use crate::matrix::ChunkMatrix;
        let slim_colside = slim.storage_cells();
        // val duplicates the col-array footprint.
        assert_eq!(m.storage_cells(), slim_colside + (m.col.len()));
    }

    #[test]
    fn sigma_does_not_change_distances() {
        let g = WeightedCsrGraph::from_edges(
            8,
            [
                (0, 1, 1.5),
                (1, 2, 0.5),
                (2, 3, 2.0),
                (0, 4, 4.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
                (3, 7, 0.5),
            ],
        );
        let a = sssp(&WeightedSellCSigma::<4>::build(&g, 1), 0);
        let b = sssp(&WeightedSellCSigma::<4>::build(&g, 8), 0);
        assert_close(&a.dist, &b.dist);
    }
}
