//! Single-source shortest paths over the tropical semiring with *real*
//! edge weights — the boundary case that motivates SlimSell's scoping.
//!
//! For weighted graphs the matrix values are the weights themselves, so
//! they cannot be re-derived from `col`: the explicit `val` array of
//! Sell-C-σ is mandatory (§III-B limits SlimSell to unweighted graphs).
//! The same min-plus kernel then computes SSSP as a Bellman–Ford-style
//! fixpoint: `x' = MIN(ADD(rhs, vals), x)` until no label improves.
//!
//! Unlike BFS, SSSP is label-*correcting*: a finite label can improve in
//! a later iteration, so the SlimWork skip criterion ("all labels
//! finite") is unsound here and deliberately absent — an instructive
//! ablation of where each optimization applies.
//!
//! Each relaxation sweep runs tile-parallel over [`crate::tiling`]
//! chunk tiles writing disjoint slabs of the next label vector; the
//! per-chunk min-plus math is independent of tile boundaries, so
//! distances are bit-identical at any thread count.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{sssp, WeightedSellCSigma};
//! use slimsell_graph::weighted::WeightedCsrGraph;
//!
//! // The cheap 2-hop route (0→1→2, cost 3) beats the direct edge (10).
//! let g = WeightedCsrGraph::from_edges(3, [(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]);
//! let m = WeightedSellCSigma::<4>::build(&g, 3);
//! let out = sssp(&m, 0);
//! assert_eq!(out.dist, vec![0.0, 1.0, 3.0]);
//! ```

use slimsell_graph::weighted::WeightedCsrGraph;
use slimsell_graph::{Permutation, VertexId};
use slimsell_simd::{SimdF32, SimdI32};

use crate::tiling::{ChunkTiling, Schedule};

/// Sell-C-σ with real-valued weights: structure arrays plus a weight
/// `val` array (padding cells hold `+∞`, the min-plus annihilator).
#[derive(Clone, Debug)]
pub struct WeightedSellCSigma<const C: usize> {
    n: usize,
    n_padded: usize,
    cs: Vec<usize>,
    cl: Vec<u32>,
    col: Vec<i32>,
    val: Vec<f32>,
    perm: Permutation,
}

impl<const C: usize> WeightedSellCSigma<C> {
    /// Builds from a weighted graph with σ-scoped degree sorting (same
    /// layout rules as the unweighted structure).
    pub fn build(g: &WeightedCsrGraph, sigma: usize) -> Self {
        let n = g.num_vertices();
        assert!(n > 0, "empty graph");
        let sigma = sigma.clamp(1, n);
        let gs = g.structure();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        if sigma > 1 {
            for window in order.chunks_mut(sigma) {
                window.sort_by_key(|&v| (std::cmp::Reverse(gs.degree(v)), v));
            }
        }
        let perm = Permutation::from_new_to_old(order);
        let nc = n.div_ceil(C);
        let n_padded = nc * C;
        let mut cl = vec![0u32; nc];
        for (i, c) in cl.iter_mut().enumerate() {
            let hi = ((i + 1) * C).min(n);
            *c = (i * C..hi)
                .map(|r| gs.degree(perm.to_old(r as VertexId)) as u32)
                .max()
                .unwrap_or(0);
        }
        let mut cs = vec![0usize; nc];
        let mut total = 0usize;
        for (s, &l) in cs.iter_mut().zip(&cl) {
            *s = total;
            total += l as usize * C;
        }
        let mut col = vec![-1i32; total];
        let mut val = vec![f32::INFINITY; total];
        for (i, &base) in cs.iter().enumerate() {
            for lane in 0..C {
                let r = i * C + lane;
                if r >= n {
                    continue;
                }
                let old = perm.to_old(r as VertexId);
                for (j, (w, wt)) in g.neighbors(old).enumerate() {
                    col[base + j * C + lane] = perm.to_new(w) as i32;
                    val[base + j * C + lane] = wt;
                }
            }
        }
        Self { n, n_padded, cs, cl, col, val, perm }
    }

    /// Storage cells (`val` + `col` + `cs` + `cl`) — twice SlimSell's,
    /// necessarily.
    pub fn storage_cells(&self) -> usize {
        self.val.len() + self.col.len() + self.cs.len() + self.cl.len()
    }
}

/// SSSP result.
#[derive(Clone, Debug)]
pub struct SsspOutput {
    /// Shortest-path distances in original ids (`∞` = unreachable).
    pub dist: Vec<f32>,
    /// Relaxation sweeps executed (≤ n; typically ≈ hop diameter).
    pub iterations: usize,
}

/// Runs min-plus SSSP from `root` until the fixpoint.
pub fn sssp<const C: usize>(m: &WeightedSellCSigma<C>, root: VertexId) -> SsspOutput {
    let n = m.n;
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let root_p = m.perm.to_new(root) as usize;
    let mut cur = vec![f32::INFINITY; m.n_padded];
    cur[root_p] = 0.0;
    let mut nxt = cur.clone();

    let nc = m.n_padded / C;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let cs = &m.cs;
        let cl = &m.cl;
        let col = &m.col;
        let val = &m.val;
        let cur_ref = &cur;
        let tiling = ChunkTiling::new(nc, Schedule::Dynamic);
        let tiles = tiling.split(C, &mut nxt);
        let changed = tiling.map_reduce(
            tiles,
            |t| {
                let mut any = false;
                for (k, out) in t.data.chunks_mut(C).enumerate() {
                    let i = t.c0 + k;
                    let mut acc = SimdF32::<C>::load(&cur_ref[i * C..]);
                    let before = acc;
                    let mut index = cs[i];
                    for _ in 0..cl[i] {
                        let cols = SimdI32::<C>::load(&col[index..]);
                        let vals = SimdF32::<C>::load(&val[index..]);
                        let rhs = SimdF32::gather_or(cur_ref, cols, f32::INFINITY);
                        // ∞ + w = ∞ keeps unreached neighbors neutral.
                        acc = rhs.add(vals).min(acc);
                        index += C;
                    }
                    acc.store(out);
                    any |= acc.any_ne(before);
                }
                any
            },
            || false,
            |a, b| a | b,
        );
        std::mem::swap(&mut cur, &mut nxt);
        if !changed || iterations > n {
            break;
        }
    }

    let dist = (0..n).map(|old| cur[m.perm.to_new(old as VertexId) as usize]).collect();
    SsspOutput { dist, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimsell_gen::Xoshiro256pp;
    use slimsell_graph::weighted::{dijkstra, WeightedCsrGraph};

    fn assert_close(a: &[f32], b: &[f32]) {
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            if x.is_infinite() || y.is_infinite() {
                assert_eq!(x.is_infinite(), y.is_infinite(), "vertex {i}: {x} vs {y}");
            } else {
                assert!((x - y).abs() < 1e-4 * (1.0 + y.abs()), "vertex {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_sample() {
        let g = WeightedCsrGraph::from_edges(
            5,
            [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 5.0), (2, 3, 1.0), (0, 4, 10.0), (3, 4, 1.0)],
        );
        let m = WeightedSellCSigma::<4>::build(&g, 5);
        let out = sssp(&m, 0);
        assert_close(&out.dist, &dijkstra(&g, 0));
        assert_eq!(out.dist, vec![0.0, 1.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for case in 0..8 {
            let n = 40 + rng.bounded_usize(60);
            let m_edges = 2 * n;
            let edges: Vec<(u32, u32, f32)> = (0..m_edges)
                .map(|_| {
                    (
                        rng.bounded_usize(n) as u32,
                        rng.bounded_usize(n) as u32,
                        (rng.next_f64() * 10.0) as f32 + 0.1,
                    )
                })
                .collect();
            let g = WeightedCsrGraph::from_edges(n, edges);
            if g.num_edges() == 0 {
                continue;
            }
            let m = WeightedSellCSigma::<8>::build(&g, n);
            for root in [0u32, (n / 2) as u32] {
                let out = sssp(&m, root);
                assert_close(&out.dist, &dijkstra(&g, root));
                assert!(out.iterations <= n, "case {case}: {} iterations", out.iterations);
            }
        }
    }

    #[test]
    fn label_correcting_beats_greedy_hop_order() {
        // Long cheap path vs short expensive edge: the min-plus fixpoint
        // must pick the cheap 3-hop route (cost 3) over the 1-hop edge
        // (cost 10) — labels improve after first becoming finite, the
        // reason SlimWork is unsound for SSSP.
        let g =
            WeightedCsrGraph::from_edges(4, [(0, 3, 10.0), (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let m = WeightedSellCSigma::<4>::build(&g, 4);
        let out = sssp(&m, 0);
        assert_eq!(out.dist[3], 3.0);
        assert!(out.iterations >= 3);
    }

    #[test]
    fn weighted_storage_is_double_slimsell() {
        let g =
            WeightedCsrGraph::from_edges(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 2.0), (4, 5, 2.0)]);
        let m = WeightedSellCSigma::<4>::build(&g, 6);
        let slim = crate::matrix::SlimSellMatrix::<4>::build(g.structure(), 6);
        use crate::matrix::ChunkMatrix;
        let slim_colside = slim.storage_cells();
        // val duplicates the col-array footprint.
        assert_eq!(m.storage_cells(), slim_colside + (m.col.len()));
    }

    #[test]
    fn sigma_does_not_change_distances() {
        let g = WeightedCsrGraph::from_edges(
            8,
            [
                (0, 1, 1.5),
                (1, 2, 0.5),
                (2, 3, 2.0),
                (0, 4, 4.0),
                (4, 5, 1.0),
                (5, 6, 1.0),
                (6, 7, 1.0),
                (3, 7, 0.5),
            ],
        );
        let a = sssp(&WeightedSellCSigma::<4>::build(&g, 1), 0);
        let b = sssp(&WeightedSellCSigma::<4>::build(&g, 8), 0);
        assert_close(&a.dist, &b.dist);
    }
}
