//! Graph500-style BFS output validation.
//!
//! The Graph500 specification validates a BFS run with structural checks
//! rather than a reference traversal (which would be as expensive as the
//! run itself). This module implements those checks for any
//! distance/parent output produced in this workspace:
//!
//! 1. the root has distance 0 and is its own parent;
//! 2. every edge spans at most one level (`|d(u) − d(v)| ≤ 1` when both
//!    ends are reached);
//! 3. an edge never connects a reached and an unreached vertex;
//! 4. each reached non-root vertex has a parent that is a neighbor
//!    exactly one level closer;
//! 5. unreached vertices have no parent and no distance.

use slimsell_graph::{CsrGraph, VertexId, UNREACHABLE};

/// Validates distances (and optionally parents) per the Graph500 rules.
pub fn graph500_validate(
    g: &CsrGraph,
    root: VertexId,
    dist: &[u32],
    parent: Option<&[VertexId]>,
) -> Result<(), String> {
    let n = g.num_vertices();
    if dist.len() != n {
        return Err(format!("distance vector length {} != n {}", dist.len(), n));
    }
    if dist[root as usize] != 0 {
        return Err(format!("root distance {} != 0", dist[root as usize]));
    }
    // Rule 2 & 3: edge level spans.
    for u in 0..n as VertexId {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            let dv = dist[v as usize];
            match (du == UNREACHABLE, dv == UNREACHABLE) {
                (false, false) => {
                    if du.abs_diff(dv) > 1 {
                        return Err(format!("edge ({u},{v}) spans {} levels", du.abs_diff(dv)));
                    }
                }
                (false, true) | (true, false) => {
                    return Err(format!("edge ({u},{v}) connects reached and unreached vertices"));
                }
                (true, true) => {}
            }
        }
    }
    // Rule 1 (non-root zero distances).
    for v in 0..n as VertexId {
        if v != root && dist[v as usize] == 0 {
            return Err(format!("non-root vertex {v} at distance 0"));
        }
    }
    // Rules 4 & 5 via the shared parent validator.
    if let Some(p) = parent {
        slimsell_graph::validate_parents(g, root, dist, p)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use crate::{BfsEngine, BfsOptions, SelMaxSemiring};
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{serial_bfs, GraphBuilder};

    #[test]
    fn accepts_engine_output() {
        let g = kronecker(9, 6.0, KroneckerParams::GRAPH500, 2);
        let root = slimsell_graph::stats::sample_roots(&g, 1)[0];
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let out = BfsEngine::run::<_, SelMaxSemiring, 8>(&m, root, &BfsOptions::default());
        graph500_validate(&g, root, &out.dist, out.parent.as_deref()).unwrap();
    }

    #[test]
    fn rejects_level_skip() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let mut r = serial_bfs(&g, 0);
        r.dist[2] = 5; // edge (1,2) now spans 4 levels
        assert!(graph500_validate(&g, 0, &r.dist, None).is_err());
    }

    #[test]
    fn rejects_reached_unreached_edge() {
        let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
        let mut r = serial_bfs(&g, 0);
        r.dist[2] = UNREACHABLE;
        assert!(graph500_validate(&g, 0, &r.dist, None).is_err());
    }

    #[test]
    fn rejects_phantom_zero_distance() {
        let g = GraphBuilder::new(4).edges([(0, 1), (2, 3)]).build();
        let mut r = serial_bfs(&g, 0);
        r.dist[2] = 0;
        r.dist[3] = 1;
        assert!(graph500_validate(&g, 0, &r.dist, None).is_err());
    }

    #[test]
    fn rejects_wrong_root_distance() {
        let g = GraphBuilder::new(2).edges([(0, 1)]).build();
        assert!(graph500_validate(&g, 0, &[1, 1], None).is_err());
    }

    #[test]
    fn accepts_disconnected_output() {
        let g = GraphBuilder::new(5).edges([(0, 1), (3, 4)]).build();
        let r = serial_bfs(&g, 0);
        graph500_validate(&g, 0, &r.dist, Some(&r.parent)).unwrap();
    }
}
