//! The paper's primary contribution: SlimSell and its BFS-SpMV engine.
//!
//! Module map (paper section in parentheses):
//!
//! * [`structure`] — the chunked Sell layout shared by Sell-C-σ and
//!   SlimSell: σ-scoped row sorting, chunk offsets `cs`, chunk lengths
//!   `cl`, column array with `-1` padding markers (§II-D2, §III-B).
//! * [`matrix`] — the two representations: [`SellCSigma`] (explicit `val`
//!   array) and [`SlimSellMatrix`] (`val` derived from `col`, the 50 %
//!   storage saving of §III-B).
//! * [`semiring`] — tropical, real, boolean and sel-max BFS semirings
//!   with their frontier-derivation post-processing and SlimWork skip
//!   criteria (§III-A, Listings 5 & 7).
//! * [`bfs`] — the parallel BFS-SpMV driver: per-chunk kernels, SlimWork
//!   chunk skipping (§III-C), static/dynamic scheduling, per-iteration
//!   statistics.
//! * [`slimchunk`] — 2-D chunk tiling for load balance (§III-D).
//! * [`worklist`] — the chunk dependency graph (computed once per
//!   structure) and epoch-stamped activation worklists behind the
//!   worklist sweep modes: frontier-proportional sweeps instead of
//!   full sweeps with per-chunk skip tests.
//! * [`sweep`] — the sweep-mode policy layer ([`SweepConfig`],
//!   `SLIMSELL_SWEEP`): pure full/worklist modes plus the default
//!   adaptive controller that switches per iteration at the `~nc/2`
//!   crossover with hysteresis.
//! * [`mask`] — dense vertex masks over the chunk layout: one
//!   allowed-lane word per chunk, padding lanes always set,
//!   popcount-tracked updates. Every semiring sweep accepts one.
//! * [`descriptor`] — GraphBLAS-style descriptors ((complemented)
//!   mask + push/pull policy + [`SweepConfig`]) and the
//!   descriptor-driven BFS that generalizes [`dirop`].
//! * [`dp`] — the `DP` distance→parent transformation (§II-C).
//! * [`dirop`] — direction-optimized algebraic BFS (the third curve of
//!   Figure 1): sparse top-down steps on the SlimSell structure, SpMV
//!   bottom-up steps when the frontier is large.
//! * [`storage`] — Table III storage accounting.
//! * [`counters`] — per-iteration work/time statistics used by every
//!   experiment harness.
//!
//! Extensions beyond the paper's evaluation (its §VI future-work list):
//!
//! * [`mod@betweenness`] — Brandes betweenness centrality on the SlimSell
//!   substrate (real-semiring forward sweeps);
//! * [`mod@msbfs`] — multi-source BFS vectorized over the source dimension;
//! * [`mod@pagerank`] — PageRank as repeated real-semiring SpMV;
//! * [`mod@sssp`] — weighted min-plus SSSP on Sell-C-σ (the case where the
//!   explicit `val` array is mandatory, delimiting SlimSell's scope);
//! * [`validation`] — Graph500-style structural output validation.
//!
//! Every kernel above the engine layer ([`mod@pagerank`], [`mod@sssp`],
//! [`mod@msbfs`], [`mod@betweenness`], and the BFS driver itself) runs on the
//! shared chunk-tiling substrate in [`tiling`]; see ARCHITECTURE.md at
//! the repository root for the cross-crate picture and the
//! tiling/determinism contract.

#![deny(missing_docs)]

pub mod betweenness;
pub mod bfs;
pub mod components;
pub mod counters;
pub mod descriptor;
pub mod dirop;
pub mod dp;
pub mod mask;
pub mod matrix;
pub mod msbfs;
pub mod pagerank;
pub mod semiring;
pub mod slimchunk;
pub mod sssp;
pub mod storage;
pub mod structure;
pub mod sweep;
pub mod tiling;
pub mod validation;
pub mod worklist;

pub use betweenness::{
    betweenness_exact, betweenness_from_sources, betweenness_from_sources_with, forward_sweep,
    forward_sweep_with, BetweennessOptions, ShortestPathDag,
};
pub use bfs::{chunk_mv, BfsEngine, BfsOptions, BfsOutput, Schedule};
pub use components::connected_components;
pub use counters::{IterStats, RunStats};
pub use descriptor::{run_descriptor, Descriptor, DirectionPolicy};
pub use dp::dp_transform;
pub use mask::VertexMask;
pub use matrix::{ChunkMatrix, SellCSigma, SlimSellMatrix};
pub use msbfs::{multi_bfs, multi_bfs_while, multi_bfs_with, MsBfsOptions, MultiBfsOutput};
pub use pagerank::{pagerank, PageRankOptions};
pub use semiring::{BooleanSemiring, RealSemiring, SelMaxSemiring, Semiring, TropicalSemiring};
pub use sssp::{sssp, sssp_with, SsspOptions, WeightedSellCSigma};
pub use structure::SellStructure;
pub use sweep::{AdaptiveController, ExecutedSweep, SweepConfig, SweepMode};
pub use validation::graph500_validate;
pub use worklist::{ActivationState, ChunkDepGraph};
