//! Betweenness centrality on the SlimSell substrate — the paper's §VI
//! extension target ("We strongly believe that SlimSell can be used to
//! accelerate other graph algorithms, for example schemes for solving
//! Betweenness Centrality").
//!
//! Brandes' algorithm needs, per source `s`:
//!
//! 1. a *forward* sweep computing shortest-path counts `σ_s(v)` and BFS
//!    levels — which is exactly the **real-semiring** BFS of §III-A2
//!    (the frontier carries walk counts restricted to shortest paths);
//! 2. a *backward* sweep accumulating dependencies
//!    `δ_s(v) = Σ_{w: succ} σ(v)/σ(w) · (1 + δ(w))`.
//!
//! The forward sweep reuses the BFS engine's sweep dispatchers
//! verbatim ([`crate::bfs`]'s full-range and worklist iterators), so it
//! rides the same [`SweepMode`] substrate as every other kernel: full
//! sweeps, frontier-proportional worklist sweeps, or the adaptive
//! controller ([`BetweennessOptions::sweep`], defaulting to the
//! `SLIMSELL_SWEEP` env var). Every sweep runs *tracked* — the exact
//! bit-wise changed-chunk list is harvested each iteration as the
//! deterministic frontier from which σ and levels are recorded, in
//! ascending chunk order in every mode, so the DAG (and hence the
//! centralities) is bit-identical across sweep modes and thread
//! counts. The backward sweep stays **sequential by design**: dependency
//! accumulation scatters `δ` contributions to predecessors, so
//! different vertices of one level may write the same `δ[v]` — there is
//! no chunk-disjoint write pattern to tile over without atomics or
//! per-thread accumulator arrays, and levels shrink too fast for either
//! to pay off at this scale. The per-level coefficient pass *is*
//! parallel (ordered collect), and the serial scatter keeps the `f64`
//! accumulation order — and therefore the centralities — bit-identical
//! at any thread count.
//!
//! Path counts run in `f32` inside the vector kernel (the engine's
//! native type) and are widened to `f64` for the dependency
//! accumulation; exact centralities therefore require
//! `σ_s(v) < 2^24`, which holds for the laptop-scale graphs used here —
//! the limitation is documented and asserted.
//!
//! # Example
//!
//! ```
//! use slimsell_core::{betweenness_exact, SlimSellMatrix};
//! use slimsell_graph::GraphBuilder;
//!
//! // On a 3-vertex path every 1↔3 shortest path crosses the middle.
//! let g = GraphBuilder::new(3).edges([(0, 1), (1, 2)]).build();
//! let m = SlimSellMatrix::<4>::build(&g, 3);
//! let bc = betweenness_exact(&m);
//! assert_eq!(bc, vec![0.0, 2.0, 0.0]); // both directions counted
//! ```

use std::time::Instant;

use rayon::prelude::*;
use slimsell_graph::VertexId;

use crate::bfs::{iterate, iterate_worklist, BfsOptions, EngineScratch};
use crate::counters::RunStats;
use crate::matrix::ChunkMatrix;
use crate::semiring::{RealSemiring, Semiring, StateVecs};
use crate::sweep::{resolve_sweep, ExecutedSweep, SweepConfig, SweepMode};
use crate::tiling::Schedule;

/// Betweenness options: sweep strategy and scheduling for the forward
/// sweeps (the backward sweep is sequential by design and unaffected).
#[derive(Clone, Copy, Debug, Default)]
pub struct BetweennessOptions {
    /// Sweep strategy and chunk scheduling for the forward
    /// (real-semiring BFS) sweeps (sweep defaults to the
    /// `SLIMSELL_SWEEP` env var; adaptive when unset). The DAG — and
    /// hence the centralities — is bit-identical in every mode.
    pub config: SweepConfig,
}

impl BetweennessOptions {
    /// Sets the sweep strategy of the forward sweeps (builder).
    #[must_use]
    pub fn sweep(mut self, sweep: SweepMode) -> Self {
        self.config.sweep = sweep;
        self
    }

    /// Sets the chunk scheduling policy of the forward sweeps (builder).
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Sets the full sweep configuration of the forward sweeps (builder).
    #[must_use]
    pub fn config(mut self, config: SweepConfig) -> Self {
        self.config = config;
        self
    }

    /// Migration shim for the pre-PR-10 `sweep` field.
    #[deprecated(note = "set `config.sweep` or use the `.sweep(..)` builder")]
    pub fn set_sweep(&mut self, sweep: SweepMode) {
        self.config.sweep = sweep;
    }

    /// Migration shim for the pre-PR-10 `schedule` field.
    #[deprecated(note = "set `config.schedule` or use the `.schedule(..)` builder")]
    pub fn set_schedule(&mut self, schedule: Schedule) {
        self.config.schedule = schedule;
    }
}

/// Per-source forward-sweep result.
#[derive(Clone, Debug)]
pub struct ShortestPathDag {
    /// BFS level of each vertex in *permuted* space (`u32::MAX` =
    /// unreachable).
    pub level: Vec<u32>,
    /// Shortest-path counts `σ_s(v)` in permuted space.
    pub sigma: Vec<f64>,
    /// Vertices grouped by level, deepest last (permuted ids).
    pub levels: Vec<Vec<u32>>,
    /// Per-sweep statistics of the forward sweep: sweep-mode trace,
    /// column steps, worklist sizes, activation probes.
    pub stats: RunStats,
}

/// Forward sweep from `root` (original id): real-semiring BFS recording
/// `σ` and levels, with the default options (env-selected sweep mode,
/// dynamic scheduling).
pub fn forward_sweep<M, const C: usize>(matrix: &M, root: VertexId) -> ShortestPathDag
where
    M: ChunkMatrix<C>,
{
    forward_sweep_with(matrix, root, &BetweennessOptions::default())
}

/// Forward sweep from `root` under the given sweep policy.
///
/// Runs the BFS engine's sweep dispatchers with change tracking forced
/// on in every mode: the exact bit-wise changed-chunk list of each
/// iteration (which the adaptive controller needs anyway) doubles as
/// the frontier from which new levels and σ values are harvested —
/// a superset of the chunks holding newly discovered vertices, scanned
/// in ascending chunk order, so the recorded DAG is deterministic
/// across sweep modes and thread counts while the harvest cost stays
/// proportional to the changed region instead of the chunk range.
pub fn forward_sweep_with<M, const C: usize>(
    matrix: &M,
    root: VertexId,
    opts: &BetweennessOptions,
) -> ShortestPathDag
where
    M: ChunkMatrix<C>,
{
    type S = RealSemiring;
    let s = matrix.structure();
    let n = s.n();
    assert!((root as usize) < n, "root {root} out of range (n = {n})");
    let root_p = s.perm().to_new(root) as usize;
    let np = s.n_padded();

    let mut cur = StateVecs::new(np);
    let mut nxt = StateVecs::new(np);
    let mut d = vec![0.0f32; np];
    S::init(&mut cur, &mut d, n, root_p);

    let mut level = vec![u32::MAX; np];
    let mut sigma = vec![0.0f64; np];
    let mut levels: Vec<Vec<u32>> = vec![vec![root_p as u32]];
    level[root_p] = 0;
    sigma[root_p] = 1.0;

    let nc = np / C;
    let bfs_opts = BfsOptions::default().config(opts.config);
    let mut scratch = EngineScratch::new();
    if opts.config.sweep.uses_worklist() {
        // Establish the worklist invariant once (nxt == cur outside the
        // worklist) and seed from the root's chunk/lane.
        S::clone_state(&cur, &mut nxt);
        scratch.pending.push(((root_p / C) as u32, 1u32 << (root_p % C)));
    }

    let mut stats = RunStats::default();
    let mut depth = 0u32;
    loop {
        depth += 1;
        let t0 = Instant::now();
        let EngineScratch { act, pending, ctl, .. } = &mut scratch;
        let (exec, seeded) = match opts.config.sweep {
            // Short-circuit before touching `dep_graph()`: pure
            // full-sweep runs must not force the lazy build.
            SweepMode::Full => (ExecutedSweep::Full, None),
            _ => resolve_sweep(opts.config.sweep, ctl, act, s.dep_graph(), pending, nc, None),
        };
        let mut it = match exec {
            // track = true even in pure full mode: the changed-chunk
            // list is the harvest frontier, not just re-seeding state.
            ExecutedSweep::Full => iterate::<M, S, C>(
                matrix,
                &cur,
                &mut nxt,
                &mut d,
                depth as f32,
                &bfs_opts,
                &mut scratch,
                true,
            ),
            ExecutedSweep::Worklist => iterate_worklist::<M, S, C>(
                matrix,
                &cur,
                &mut nxt,
                &mut d,
                depth as f32,
                &bfs_opts,
                &mut scratch,
            ),
        };
        it.sweep_mode = exec;
        if let Some(probes) = seeded {
            it.activations = probes;
        }
        it.elapsed = t0.elapsed();
        let any = it.changed;
        stats.iters.push(it);
        // Record σ and level for the newly discovered frontier. After
        // either dispatcher, `scratch.pending` holds exactly this
        // iteration's bit-wise changed (chunk, lane-mask) pairs in
        // ascending chunk order — a newly counted vertex changed its
        // `x` lane, so its chunk (and lane bit) is always listed.
        let mut this_level = Vec::new();
        for &(chunk, mask) in scratch.pending.iter() {
            let base = chunk as usize * C;
            for lane in 0..C {
                if mask & (1 << lane) == 0 {
                    continue;
                }
                let v = base + lane;
                let count = nxt.x[v];
                if count != 0.0 && level[v] == u32::MAX {
                    assert!(
                        count.is_finite() && count < (1u32 << 24) as f32,
                        "σ overflowed f32 exact-integer range at vertex {v}; graph too dense for exact BC"
                    );
                    level[v] = depth;
                    sigma[v] = count as f64;
                    this_level.push(v as u32);
                }
            }
        }
        if !this_level.is_empty() {
            levels.push(this_level);
        }
        std::mem::swap(&mut cur, &mut nxt);
        if !any || depth as usize > n {
            break;
        }
    }
    ShortestPathDag { level, sigma, levels, stats }
}

/// Backward dependency accumulation over the Sell structure: returns
/// `δ_s(v)` in permuted space.
///
/// The per-level coefficient pass is parallel (ordered collect); the
/// scatter to predecessors is deliberately sequential — see the module
/// docs for why this sweep is not tiled.
pub fn backward_sweep<M, const C: usize>(matrix: &M, dag: &ShortestPathDag) -> Vec<f64>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let mut delta = vec![0.0f64; s.n_padded()];
    // Deepest level first; the root level (index 0) contributes nothing.
    for lvl in dag.levels.iter().skip(1).rev() {
        let contributions: Vec<(u32, f64)> = lvl
            .par_iter()
            .map(|&w| {
                // δ(pred) += σ(pred)/σ(w) · (1 + δ(w)) for each
                // predecessor; computed pull-style from w's row.
                (w, (1.0 + delta[w as usize]) / dag.sigma[w as usize])
            })
            .collect();
        // Scatter to predecessors serially per level (rows are short and
        // levels shrink fast; this keeps the accumulation deterministic).
        for (w, coeff) in contributions {
            let lw = dag.level[w as usize];
            for v in s.row_neighbors(w as usize) {
                if dag.level[v as usize] + 1 == lw {
                    delta[v as usize] += dag.sigma[v as usize] * coeff;
                }
            }
        }
    }
    delta
}

/// Exact betweenness centrality (all sources) on the vectorized
/// substrate. Unreached pairs contribute nothing; endpoints are
/// excluded, and for undirected graphs every pair is counted twice (the
/// standard Brandes convention — halve if needed).
pub fn betweenness_exact<M, const C: usize>(matrix: &M) -> Vec<f64>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let sources: Vec<VertexId> = (0..n as VertexId).collect();
    betweenness_from_sources(matrix, &sources)
}

/// Sampled (approximate) betweenness from the given sources, with the
/// default options.
pub fn betweenness_from_sources<M, const C: usize>(matrix: &M, sources: &[VertexId]) -> Vec<f64>
where
    M: ChunkMatrix<C>,
{
    betweenness_from_sources_with(matrix, sources, &BetweennessOptions::default())
}

/// Sampled (approximate) betweenness from the given sources under the
/// given forward-sweep policy. Centralities are bit-identical in every
/// sweep mode.
pub fn betweenness_from_sources_with<M, const C: usize>(
    matrix: &M,
    sources: &[VertexId],
    opts: &BetweennessOptions,
) -> Vec<f64>
where
    M: ChunkMatrix<C>,
{
    let s = matrix.structure();
    let n = s.n();
    let mut bc = vec![0.0f64; n];
    for &src in sources {
        let dag = forward_sweep_with(matrix, src, opts);
        let delta = backward_sweep(matrix, &dag);
        let root_p = s.perm().to_new(src) as usize;
        for (old, b) in bc.iter_mut().enumerate() {
            let v = s.perm().to_new(old as VertexId) as usize;
            if v != root_p && dag.level[v] != u32::MAX {
                *b += delta[v];
            }
        }
    }
    bc
}

/// Textbook serial Brandes, used as the correctness reference.
pub fn brandes_reference(g: &slimsell_graph::CsrGraph) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bc = vec![0.0f64; n];
    for s in 0..n as VertexId {
        let mut stack = Vec::new();
        let mut preds: Vec<Vec<VertexId>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![i64::MAX; n];
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::new();
        q.push_back(s);
        while let Some(v) = q.pop_front() {
            stack.push(v);
            for &w in g.neighbors(v) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    q.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SlimSellMatrix;
    use slimsell_gen::kronecker::{kronecker, KroneckerParams};
    use slimsell_graph::{CsrGraph, GraphBuilder};

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()), "vertex {i}: {x} vs {y}");
        }
    }

    #[test]
    fn path_graph_centrality() {
        // On a path, the middle vertex lies on the most shortest paths.
        let g = GraphBuilder::new(5).edges((0..4u32).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 5);
        let bc = betweenness_exact(&m);
        assert_close(&bc, &brandes_reference(&g));
        assert!(bc[2] > bc[1] && bc[1] > bc[0]);
        assert_eq!(bc[0], 0.0);
    }

    #[test]
    fn star_center_dominates() {
        let g = GraphBuilder::new(6).edges((1..6u32).map(|v| (0, v))).build();
        let m = SlimSellMatrix::<4>::build(&g, 6);
        let bc = betweenness_exact(&m);
        assert_close(&bc, &brandes_reference(&g));
        assert!(bc[0] > 0.0);
        assert!(bc[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matches_brandes_on_kronecker() {
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 3);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        assert_close(&betweenness_exact(&m), &brandes_reference(&g));
    }

    #[test]
    fn matches_brandes_with_multiple_shortest_paths() {
        // Diamond: two shortest paths 0→3, so σ splits.
        let g: CsrGraph = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 4);
        let bc = betweenness_exact(&m);
        assert_close(&bc, &brandes_reference(&g));
        // Each middle vertex carries half of the 0↔3 pair (×2 directions).
        assert!((bc[1] - 1.0).abs() < 1e-9, "bc[1] = {}", bc[1]);
    }

    #[test]
    fn disconnected_graph_handled() {
        let g = GraphBuilder::new(6).edges([(0, 1), (1, 2), (4, 5)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 6);
        assert_close(&betweenness_exact(&m), &brandes_reference(&g));
    }

    #[test]
    fn sampling_subset_of_exact() {
        let g = kronecker(7, 4.0, KroneckerParams::GRAPH500, 9);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let exact = betweenness_exact(&m);
        let sampled = betweenness_from_sources(&m, &[0, 1, 2, 3]);
        // Sampled values are partial sums of the exact ones.
        for (s, e) in sampled.iter().zip(&exact) {
            assert!(s <= &(e + 1e-9));
        }
    }

    #[test]
    fn forward_sweep_sigma_and_levels() {
        let g = GraphBuilder::new(4).edges([(0, 1), (0, 2), (1, 3), (2, 3)]).build();
        let m = SlimSellMatrix::<4>::build(&g, 4);
        let dag = forward_sweep(&m, 0);
        let to_new = |v: u32| m.structure().perm().to_new(v) as usize;
        assert_eq!(dag.sigma[to_new(0)], 1.0);
        assert_eq!(dag.sigma[to_new(3)], 2.0); // two shortest paths
        assert_eq!(dag.level[to_new(3)], 2);
        assert_eq!(dag.levels.len(), 3);
    }

    #[test]
    fn forward_sweep_modes_produce_identical_dags() {
        use crate::sweep::SweepMode;
        let g = kronecker(8, 4.0, KroneckerParams::GRAPH500, 21);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        for root in [0u32, 17, 63] {
            let full =
                forward_sweep_with(&m, root, &BetweennessOptions::default().sweep(SweepMode::Full));
            for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
                let opts = BetweennessOptions::default().sweep(sweep);
                let dag = forward_sweep_with(&m, root, &opts);
                assert_eq!(dag.level, full.level, "{sweep:?} root {root}: levels diverged");
                let a: Vec<u64> = dag.sigma.iter().map(|x| x.to_bits()).collect();
                let b: Vec<u64> = full.sigma.iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "{sweep:?} root {root}: σ diverged");
                assert_eq!(dag.levels, full.levels, "{sweep:?} root {root}: level sets diverged");
                assert!(
                    dag.stats.total_col_steps() <= full.stats.total_col_steps(),
                    "{sweep:?} did more work than the full sweep"
                );
            }
        }
    }

    #[test]
    fn forward_sweep_worklist_reduces_work_on_a_path() {
        use crate::sweep::SweepMode;
        let n = 256u32;
        let g = GraphBuilder::new(n as usize).edges((0..n - 1).map(|v| (v, v + 1))).build();
        let m = SlimSellMatrix::<4>::build(&g, 1);
        let full = forward_sweep_with(&m, 0, &BetweennessOptions::default().sweep(SweepMode::Full));
        let wl =
            forward_sweep_with(&m, 0, &BetweennessOptions::default().sweep(SweepMode::Worklist));
        assert_eq!(wl.level, full.level);
        assert_eq!(wl.levels, full.levels);
        assert!(
            wl.stats.total_col_steps() < full.stats.total_col_steps(),
            "worklist {} !< full {}",
            wl.stats.total_col_steps(),
            full.stats.total_col_steps()
        );
        assert!(wl.stats.total_not_on_worklist() > 0);
        assert!(wl.stats.total_activations() > 0);
    }

    #[test]
    fn centralities_bit_identical_across_sweep_modes() {
        use crate::sweep::SweepMode;
        let g = kronecker(7, 4.0, KroneckerParams::GRAPH500, 9);
        let m = SlimSellMatrix::<8>::build(&g, g.num_vertices());
        let sources = [0u32, 3, 11, 29];
        let run = |sweep| {
            betweenness_from_sources_with(&m, &sources, &BetweennessOptions::default().sweep(sweep))
        };
        let full = run(SweepMode::Full);
        for sweep in [SweepMode::Worklist, SweepMode::Adaptive] {
            let bc = run(sweep);
            let a: Vec<u64> = bc.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u64> = full.iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b, "{sweep:?} centralities diverged");
        }
    }
}
