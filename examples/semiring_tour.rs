//! Tour of the four BFS semirings (§III-A): same graph, same result,
//! different algebra — and different post-processing costs.
//!
//! ```text
//! cargo run --release --example semiring_tour
//! ```

use std::time::Instant;

use slimsell::prelude::*;

fn main() {
    let g = kronecker(13, 16.0, KroneckerParams::GRAPH500, 21);
    println!("Kronecker graph: n = {}, m = {}", g.num_vertices(), g.num_edges());
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let reference = serial_bfs(&g, root);
    let n = g.num_vertices();
    let matrix = SlimSellMatrix::<8>::build(&g, n);

    println!(
        "\n{:<10} {:>10} {:>12} {:>12} {:>9} {:>8}",
        "semiring", "iters", "cells", "time [ms]", "parents?", "DP [ms]"
    );

    macro_rules! tour {
        ($sem:ty) => {{
            let t0 = Instant::now();
            let out = BfsEngine::run::<_, $sem, 8>(&matrix, root, &BfsOptions::default());
            let bfs_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(out.dist, reference.dist, "{} diverged", <$sem>::NAME);
            // Semirings without native parents need the DP transformation
            // (§II-C); sel-max gets them for free.
            let (has_parents, dp_ms) = match &out.parent {
                Some(p) => {
                    validate_parents(&g, root, &out.dist, p).unwrap();
                    (true, 0.0)
                }
                None => {
                    let t1 = Instant::now();
                    let p = dp_transform(&g, &out.dist, root);
                    let dp_ms = t1.elapsed().as_secs_f64() * 1e3;
                    validate_parents(&g, root, &out.dist, &p).unwrap();
                    (false, dp_ms)
                }
            };
            println!(
                "{:<10} {:>10} {:>12} {:>12.3} {:>9} {:>8.3}",
                <$sem>::NAME,
                out.stats.num_iterations(),
                out.stats.total_cells(),
                bfs_ms,
                if has_parents { "native" } else { "via DP" },
                dp_ms
            );
        }};
    }
    tour!(TropicalSemiring);
    tour!(RealSemiring);
    tour!(BooleanSemiring);
    tour!(SelMaxSemiring);

    println!("\nall four semirings produced identical distances — the paper's");
    println!("point: the algebra changes the constants (post-processing, DP),");
    println!("not the traversal.");
}
