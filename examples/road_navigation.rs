//! Hop-distance navigation on a road network — the *hard* case for
//! algebraic BFS (§IV-A5: high diameter, ρ̄ ≈ 1.4, "small or no
//! improvement from SlimWork") and exactly where direction optimization
//! keeps the sparse iterations cheap.
//!
//! Uses the `rca` (California road network) stand-in, compares plain
//! SpMV BFS against the direction-optimized hybrid, and reports which
//! direction each iteration chose.
//!
//! ```text
//! cargo run --release --example road_navigation
//! ```

use slimsell::core::dirop::StepMode;
use slimsell::prelude::*;

fn main() {
    let g = standin("rca", 6, 11);
    let stats = GraphStats::compute(&g, 3);
    println!(
        "road network (rca stand-in): n = {}, m = {}, avg degree = {:.2}, diameter >= {}",
        stats.n, stats.m, stats.avg_degree, stats.diameter_lb
    );

    let matrix = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];

    // Plain BFS-SpMV: every iteration sweeps all chunks (minus SlimWork).
    let plain = BfsEngine::run::<_, TropicalSemiring, 8>(&matrix, root, &BfsOptions::default());
    println!(
        "\nplain SpMV BFS:   {} iterations, {:>12} cells, {:.2} ms",
        plain.stats.num_iterations(),
        plain.stats.total_cells(),
        plain.stats.total_time().as_secs_f64() * 1e3
    );

    // Direction-optimized: tiny frontiers run sparse top-down steps.
    let dir = run_diropt(&matrix, root, &DirOptOptions::default());
    let td = dir.modes.iter().filter(|&&m| m == StepMode::TopDown).count();
    let bu = dir.modes.len() - td;
    println!(
        "direction-opt BFS: {} iterations ({} top-down, {} bottom-up), {:>12} work units, {:.2} ms",
        dir.modes.len(),
        td,
        bu,
        dir.bfs.stats.total_cells(),
        dir.bfs.stats.total_time().as_secs_f64() * 1e3
    );
    assert_eq!(plain.dist, dir.bfs.dist, "both engines must agree");

    // Route reconstruction: farthest reachable intersection from root.
    let (far, &far_d) = plain
        .dist
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .expect("reachable vertex");
    let parents = dp_transform(&g, &plain.dist, root);
    let mut hops = 0;
    let mut v = far as VertexId;
    while v != root {
        v = parents[v as usize];
        hops += 1;
    }
    println!("\nfarthest intersection {far} is {far_d} hops away; DP-reconstructed route has {hops} hops");
    assert_eq!(hops, far_d);
    validate_parents(&g, root, &plain.dist, &parents).unwrap();
    println!("route validated.");
}
