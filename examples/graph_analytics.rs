//! Beyond BFS: the §VI extensions on the same SlimSell substrate —
//! betweenness centrality, PageRank, multi-source BFS, and weighted
//! SSSP (the case that genuinely needs Sell-C-σ's `val` array).
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use slimsell::core::betweenness::{betweenness_from_sources, brandes_reference};
use slimsell::core::msbfs::multi_bfs;
use slimsell::core::pagerank::{pagerank, PageRankOptions};
use slimsell::core::sssp::{sssp, WeightedSellCSigma};
use slimsell::graph::weighted::{dijkstra, WeightedCsrGraph};
use slimsell::prelude::*;

fn main() {
    let g = kronecker(11, 8.0, KroneckerParams::GRAPH500, 33);
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());
    let matrix = SlimSellMatrix::<8>::build(&g, g.num_vertices());

    // --- Betweenness centrality (sampled Brandes on SpMV sweeps) -----
    let sources = slimsell::graph::stats::sample_roots(&g, 8);
    let bc = betweenness_from_sources(&matrix, &sources);
    let mut top: Vec<(usize, f64)> = bc.iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop-5 betweenness (sampled over {} sources):", sources.len());
    for (v, score) in top.iter().take(5) {
        println!("  vertex {v:>6}: {score:>12.1} (degree {})", g.degree(*v as u32));
    }

    // --- PageRank (pure SpMV iteration, no frontier logic) -----------
    let pr = pagerank(&matrix, &PageRankOptions::default());
    let mut top_pr: Vec<(usize, f32)> = pr.scores.iter().copied().enumerate().collect();
    top_pr.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!(
        "\nPageRank converged in {} iterations (residual {:.2e}); top-3:",
        pr.iterations, pr.residual
    );
    for (v, score) in top_pr.iter().take(3) {
        println!("  vertex {v:>6}: {score:.6}");
    }

    // --- Multi-source BFS: 8 traversals in one sweep ------------------
    let roots8: [u32; 8] = {
        let r = slimsell::graph::stats::sample_roots(&g, 8);
        std::array::from_fn(|i| r[i % r.len()])
    };
    let ms = multi_bfs::<_, 8, 8>(&matrix, &roots8);
    println!("\nmulti-source BFS: 8 sources in {} shared iterations", ms.iterations);
    for (b, root) in roots8.iter().enumerate().take(3) {
        assert_eq!(ms.dist[b], serial_bfs(&g, *root).dist);
        let reached = ms.dist[b].iter().filter(|&&d| d != UNREACHABLE).count();
        println!("  source {root:>6}: reached {reached} vertices");
    }

    // --- Weighted SSSP: where SlimSell's trick does NOT apply ----------
    let wg = WeightedCsrGraph::from_edges(
        6,
        [(0, 1, 2.5), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 0.5), (3, 4, 3.0), (0, 5, 9.0), (4, 5, 1.0)],
    );
    let wm = WeightedSellCSigma::<4>::build(&wg, 6);
    let out = sssp(&wm, 0);
    println!("\nweighted SSSP (min-plus over Sell-C-sigma with explicit val):");
    println!("  distances: {:?}", out.dist);
    assert_eq!(out.dist, dijkstra(&wg, 0));
    println!("  matches Dijkstra; {} relaxation sweeps", out.iterations);

    // Spot-check sampled BC against serial Brandes on a small graph.
    let small = kronecker(7, 4.0, KroneckerParams::GRAPH500, 1);
    let sm = SlimSellMatrix::<4>::build(&small, small.num_vertices());
    let all: Vec<u32> = (0..small.num_vertices() as u32).collect();
    let exact = betweenness_from_sources(&sm, &all);
    let reference = brandes_reference(&small);
    let max_err = exact.iter().zip(&reference).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    println!(
        "\nexact BC vs serial Brandes on n={}: max |error| = {max_err:.2e}",
        small.num_vertices()
    );
    assert!(max_err < 1e-6);
}
