//! GPU execution on the SIMT simulator: warp-width chunks, lock-step
//! cycle accounting, and the SlimChunk load-balancing fix (§III-D,
//! §IV-B).
//!
//! ```text
//! cargo run --release --example gpu_simulation
//! ```

use slimsell::prelude::*;

fn main() {
    // A power-law graph, fully sorted: the hubs all land in chunk 0,
    // which is exactly the load-imbalance case Figure 6d/e studies.
    let g = kronecker(13, 16.0, KroneckerParams::GRAPH500, 5);
    let n = g.num_vertices();
    println!("Kronecker graph: n = {n}, m = {}", g.num_edges());

    let matrix = SlimSellMatrix::<32>::build(&g, n);
    let root = slimsell::graph::stats::sample_roots(&g, 1)[0];
    let cfg = SimtConfig::default();
    println!(
        "simulated GPU: warp width {}, {} concurrent warp slots",
        cfg.warp_width, cfg.warp_slots
    );

    let plain = run_simt_bfs::<_, TropicalSemiring, 32>(
        &matrix,
        root,
        &cfg,
        &SimtOptions { slimchunk: None, slimwork: true },
    );
    let tiled = run_simt_bfs::<_, TropicalSemiring, 32>(
        &matrix,
        root,
        &cfg,
        &SimtOptions { slimchunk: Some(8), slimwork: true },
    );
    assert_eq!(plain.dist, tiled.dist, "SlimChunk must not change the output");
    assert_eq!(plain.dist, serial_bfs(&g, root).dist, "simulator must match the reference");

    println!(
        "\n{:<10} {:>16} {:>16} {:>10} {:>10}",
        "iteration", "plain [cyc]", "SlimChunk [cyc]", "imb", "imb(SC)"
    );
    for i in 0..plain.iters.len().max(tiled.iters.len()) {
        let p = plain.iters.get(i);
        let t = tiled.iters.get(i);
        println!(
            "{:<10} {:>16} {:>16} {:>10} {:>10}",
            i,
            p.map(|s| s.cycles.to_string()).unwrap_or_default(),
            t.map(|s| s.cycles.to_string()).unwrap_or_default(),
            p.map(|s| format!("{:.1}", s.imbalance)).unwrap_or_default(),
            t.map(|s| format!("{:.1}", s.imbalance)).unwrap_or_default(),
        );
    }
    println!(
        "\ntotal: plain {} cycles, SlimChunk {} cycles ({:.2}x)",
        plain.total_cycles(),
        tiled.total_cycles(),
        plain.total_cycles() as f64 / tiled.total_cycles() as f64
    );
    println!("(the BFS outputs are bit-identical; only the schedule differs)");
}
