//! Degrees-of-separation analysis on a social-network-scale power-law
//! graph — the workload class the paper's introduction motivates
//! (machine learning, data mining on skewed graphs).
//!
//! Uses the `orc` (Orkut) stand-in from Table IV, runs SlimSell BFS with
//! the sel-max semiring from several seed users, and prints the
//! reachability histogram ("n degrees of separation") plus the SlimWork
//! skip profile that makes the late iterations almost free.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use slimsell::prelude::*;

fn main() {
    // Orkut stand-in at 1/64 scale: ~48k vertices, power-law degrees.
    let g = standin("orc", 6, 7);
    let stats = GraphStats::compute(&g, 2);
    println!(
        "social graph (orc stand-in): n = {}, m = {}, max degree = {}, diameter >= {}",
        stats.n, stats.m, stats.max_degree, stats.diameter_lb
    );

    let matrix = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    let roots = slimsell::graph::stats::sample_roots(&g, 3);
    for root in roots {
        let out = BfsEngine::run::<_, SelMaxSemiring, 8>(&matrix, root, &BfsOptions::default());

        // Degrees-of-separation histogram.
        let max_d = out.dist.iter().filter(|&&d| d != UNREACHABLE).max().copied().unwrap_or(0);
        let mut hist = vec![0usize; max_d as usize + 1];
        let mut unreachable = 0usize;
        for &d in &out.dist {
            if d == UNREACHABLE {
                unreachable += 1;
            } else {
                hist[d as usize] += 1;
            }
        }
        println!("\nroot {root} (degree {}):", g.degree(root));
        for (d, &count) in hist.iter().enumerate() {
            let bar = "#".repeat(1 + count * 40 / g.num_vertices());
            println!("  {d} hops: {count:>8} {bar}");
        }
        println!("  unreachable: {unreachable}");

        // SlimWork profile: how the active chunk count collapses.
        print!("  SlimWork skips per iteration:");
        for it in &out.stats.iters {
            print!(" {}", it.chunks_skipped);
        }
        println!(
            "\n  total work: {} cells in {} iterations ({:.2} ms)",
            out.stats.total_cells(),
            out.stats.num_iterations(),
            out.stats.total_time().as_secs_f64() * 1e3
        );
    }
}
