//! Quickstart: build a graph, run vectorized algebraic BFS, inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use slimsell::prelude::*;

fn main() {
    // A small social circle: two triangles bridged by one edge, plus a
    // vertex no one talks to.
    let g = GraphBuilder::new(7)
        .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)])
        .build();
    println!("graph: n = {}, m = {}", g.num_vertices(), g.num_edges());

    // Build SlimSell with C = 8 SIMD lanes and full row sorting (σ = n).
    let matrix = SlimSellMatrix::<8>::build(&g, g.num_vertices());
    println!(
        "SlimSell built: {} chunks, {} padding cells, {} storage cells (AL would use {})",
        matrix.structure().num_chunks(),
        matrix.structure().padding_cells(),
        matrix.storage_cells(),
        AdjacencyList::from_csr(&g).storage_cells(),
    );

    // BFS over the tropical semiring: x_k = MIN(ADD(rhs, vals), x).
    let out = BfsEngine::run::<_, TropicalSemiring, 8>(&matrix, 0, &BfsOptions::default());
    for (v, &d) in out.dist.iter().enumerate() {
        match d {
            UNREACHABLE => println!("vertex {v}: unreachable"),
            d => println!("vertex {v}: distance {d}"),
        }
    }

    // Parents via the sel-max semiring (no DP transformation needed).
    let out =
        BfsEngine::run::<_, SelMaxSemiring, 8>(&matrix_for_parents(&g), 0, &BfsOptions::default());
    let parents = out.parent.expect("sel-max computes parents");
    validate_parents(&g, 0, &out.dist, &parents).expect("parent tree must be valid");
    println!("BFS tree parents: {parents:?}");

    // Every engine agrees with the serial textbook traversal.
    assert_eq!(out.dist, serial_bfs(&g, 0).dist);
    println!("verified against the serial reference.");
}

fn matrix_for_parents(g: &slimsell::graph::CsrGraph) -> SlimSellMatrix<8> {
    SlimSellMatrix::<8>::build(g, g.num_vertices())
}
