//! Bipartiteness testing via BFS — one of the applications the paper's
//! introduction lists ("it has applications in various graph-related
//! problems, including bipartiteness testing and the Ford-Fulkerson
//! method").
//!
//! A graph is bipartite iff no edge connects two vertices at the same
//! BFS distance parity (per connected component). The distances come
//! from the vectorized SlimSell engine.
//!
//! ```text
//! cargo run --release --example bipartiteness
//! ```

use slimsell::gen::geometric::perturbed_grid;
use slimsell::prelude::*;

/// Checks bipartiteness using BFS layers from every component.
fn is_bipartite(g: &CsrGraph) -> Result<(), (VertexId, VertexId)> {
    let n = g.num_vertices();
    if n == 0 {
        return Ok(());
    }
    let matrix = SlimSellMatrix::<8>::build(g, n);
    let mut color: Vec<Option<bool>> = vec![None; n];
    for start in 0..n as VertexId {
        if color[start as usize].is_some() || g.degree(start) == 0 {
            color[start as usize].get_or_insert(false);
            continue;
        }
        let out = BfsEngine::run::<_, TropicalSemiring, 8>(&matrix, start, &BfsOptions::default());
        for (v, &d) in out.dist.iter().enumerate() {
            if d != UNREACHABLE {
                color[v] = Some(d % 2 == 1);
            }
        }
        // An edge inside one BFS layer-parity class breaks bipartiteness.
        for (u, v) in g.edges() {
            if let (Some(cu), Some(cv)) = (color[u as usize], color[v as usize]) {
                if cu == cv {
                    return Err((u, v));
                }
            }
        }
    }
    Ok(())
}

fn main() {
    // A grid is bipartite (checkerboard coloring).
    let grid = perturbed_grid(20, 20, 1.0, 0.0, 0);
    match is_bipartite(&grid) {
        Ok(()) => println!("20x20 grid: bipartite (as expected)"),
        Err((u, v)) => unreachable!("grid wrongly flagged via edge ({u},{v})"),
    }

    // Adding one diagonal creates an odd cycle.
    let mut edges: Vec<(u32, u32)> = grid.edges().collect();
    edges.push((0, 21)); // diagonal in the first grid cell: triangle-free? 0-1-21-20-0 is a 4-cycle; 0-21 makes two triangles? 0-1-21 and 0-20-21 are 3-cycles.
    let odd = GraphBuilder::new(grid.num_vertices()).edges(edges).build();
    match is_bipartite(&odd) {
        Ok(()) => unreachable!("odd cycle missed"),
        Err((u, v)) => {
            println!("grid + diagonal: NOT bipartite (odd cycle through edge ({u},{v}))")
        }
    }

    // A social network is essentially never bipartite (triangles).
    let social = standin("epi", 6, 3);
    match is_bipartite(&social) {
        Ok(()) => println!("epi stand-in: bipartite (unusual!)"),
        Err((u, v)) => println!("epi stand-in: NOT bipartite (edge ({u},{v}) closes an odd cycle)"),
    }
}
